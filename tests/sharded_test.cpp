// Tests for sim::sharded — the conservative space-parallel engine — and its
// surfaces: sim::WorkerPool (the shared thread pool), net::Network's shard
// plumbing, scenario::ScenarioBuilder::shards(), and the deterministic trace
// merge. The load-bearing contract everywhere: a sharded run is the SAME
// experiment as the serial run — bit-identical completion times, fault
// digests and delivery outcomes for every shard count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "fault/fault.hpp"
#include "mtp/endpoint.hpp"
#include "net/network.hpp"
#include "scenario/scenario.hpp"
#include "sim/worker_pool.hpp"
#include "telemetry/trace.hpp"

namespace mtp {
namespace {

using namespace mtp::sim::literals;
using sim::Bandwidth;
using sim::SimTime;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// --- sim::WorkerPool -------------------------------------------------------

TEST(ShardedWorkerPool, StridedLanesCoverEveryIndexExactlyOnce) {
  sim::WorkerPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  std::vector<std::atomic<int>> hits(17);
  pool.parallel_for(17, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ShardedWorkerPool, MultiWayDispatchNeverRunsOnTheCaller) {
  // The isolation contract: jobs must not share the caller's thread-local
  // telemetry singletons, so no lane may execute on the calling thread.
  sim::WorkerPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> on_caller{0};
  pool.parallel_for(6, [&](std::size_t) {
    if (std::this_thread::get_id() == caller) ++on_caller;
  });
  EXPECT_EQ(on_caller.load(), 0);

  // The serial baseline (workers == 1) runs inline by design.
  sim::WorkerPool serial(1);
  int inline_runs = 0;
  serial.parallel_for(3, [&](std::size_t) {
    if (std::this_thread::get_id() == caller) ++inline_runs;
  });
  EXPECT_EQ(inline_runs, 3);
}

TEST(ShardedWorkerPool, ExceptionsPropagateByLowestIndex) {
  sim::WorkerPool pool(2);
  EXPECT_THROW(pool.parallel_for(4,
                                 [](std::size_t i) {
                                   if (i >= 1) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ShardedWorkerPool, MtpThreadsEnvOverridesTheDefault) {
  ::setenv("MTP_THREADS", "3", 1);
  EXPECT_EQ(sim::WorkerPool::default_workers(), 3u);
  ::setenv("MTP_THREADS", "0", 1);  // invalid: falls back to the hardware count
  EXPECT_GE(sim::WorkerPool::default_workers(), 1u);
  ::unsetenv("MTP_THREADS");
  EXPECT_GE(sim::WorkerPool::default_workers(), 1u);
}

// --- net::Network shard plumbing -------------------------------------------

TEST(ShardedNetwork, BuildShardPlacesNodesAndValidates) {
  net::Network net(1, 2);
  EXPECT_EQ(net.shards(), 2u);
  auto* a = net.add_host("a");
  net.set_build_shard(1);
  auto* b = net.add_host("b");
  EXPECT_EQ(net.shard_of(*a), 0u);
  EXPECT_EQ(net.shard_of(*b), 1u);
  EXPECT_THROW(net.set_build_shard(2), std::invalid_argument);
  EXPECT_THROW(net::Network(1, 0), std::invalid_argument);
}

TEST(ShardedNetwork, CrossShardLinkRequiresPositiveDelay) {
  net::Network net(1, 2);
  auto* a = net.add_host("a");
  net.set_build_shard(1);
  auto* b = net.add_host("b");
  // Zero propagation delay would make the conservative lookahead zero.
  EXPECT_THROW(net.connect(*a, *b, Bandwidth::gbps(10), 0_us), std::invalid_argument);
  net.connect(*a, *b, Bandwidth::gbps(10), 3_us);
  EXPECT_EQ(net.lookahead(), 3_us);
}

/// One MTP message across a 2-node rig, with the receiver either co-located
/// (shards = 1) or on its own shard. Returns (fct ns, windows).
std::pair<std::int64_t, std::uint64_t> ping(unsigned shards) {
  net::Network net(1, shards);
  auto* a = net.add_host("a");
  auto* sw = net.add_switch("sw");
  net.set_build_shard(shards > 1 ? 1 : 0);
  auto* b = net.add_host("b");
  net.connect(*a, *sw, Bandwidth::gbps(10), 1_us);
  net.connect(*sw, *b, Bandwidth::gbps(10), 2_us);
  sw->add_route(a->id(), 0);
  sw->add_route(b->id(), 1);
  core::MtpEndpoint ea(*a, {});
  core::MtpEndpoint eb(*b, {});
  eb.listen(80, [](const core::ReceivedMessage&) {});
  SimTime fct = SimTime::zero();
  ea.send_message(b->id(), 50'000, {.dst_port = 80},
                  [&fct](proto::MsgId, SimTime t) { fct = t; });
  net.run();
  return {fct.ns(), net.windows()};
}

TEST(ShardedNetwork, CrossShardMessageMatchesSerialTimeline) {
  const auto serial = ping(1);
  const auto sharded = ping(2);
  EXPECT_GT(serial.first, 0);
  EXPECT_EQ(serial.first, sharded.first);  // bit-identical completion time
  EXPECT_EQ(serial.second, 0u);            // single shard: no windows
  EXPECT_GT(sharded.second, 0u);           // engine actually windowed
}

// --- scenario::ScenarioBuilder::shards() ------------------------------------

workload::ArrivalSchedule fabric_schedule(int hosts, int per_host) {
  workload::ArrivalSchedule sched;
  for (int m = 0; m < per_host; ++m) {
    for (int h = 0; h < hosts; ++h) {
      sched.add(SimTime::nanoseconds(m * 4'000 + h * 100),
                static_cast<std::uint32_t>(h), 6'000 + 500 * (h % 4));
    }
  }
  return sched;
}

struct FabricResult {
  std::uint64_t completion_digest = 0;  ///< XOR of per-source-host streams
  std::uint64_t fault_digest = 0;
  std::uint64_t completed = 0;
  std::uint64_t flaps = 0;
  std::uint64_t windows = 0;
};

/// A k=4 fat-tree (16 hosts, 4 pods) under message-aware forwarding with a
/// flapping + impaired edge uplink, driven by a fixed any-to-any schedule.
/// Everything is a pure function of (seed); `shards` must not change it.
FabricResult run_fabric(std::uint64_t seed, unsigned shards) {
  constexpr int kHosts = 16;
  auto s = scenario::ScenarioBuilder()
               .seed(seed)
               .shards(shards)
               .topology(scenario::topo::fat_tree({.k = 4}))
               .forwarding(scenario::Forwarding::kMessageAware)
               .transport("mtp")
               .workload(fabric_schedule(kHosts, 3))
               .build();

  fault::FaultInjector inj(s->network().simulator(), seed);
  inj.random_flaps(*s->topo().fault_links[0], 20_us, 2_ms, /*mean_up=*/300_us,
                   /*mean_down=*/120_us);
  inj.impair_link(*s->topo().fault_links[0],
                  {.p_good_to_bad = 0.02, .p_bad_to_good = 0.1, .bad_loss = 0.2,
                   .bad_corrupt = 0.1});

  // Per-source-host completion cells: each is written only on the shard that
  // owns the host, and XOR makes the combined digest independent of how the
  // hosts interleave (which is the only thing sharding may change).
  struct alignas(64) Slot {
    std::uint64_t cell = 0;
    std::uint64_t completed = 0;
  };
  std::vector<Slot> slots(kHosts);
  for (int h = 0; h < kHosts; ++h) slots[h].cell = mix64(0x51ed270b9f8f51edULL ^ h);

  scenario::Scenario* sp = s.get();
  s->set_arrival_handler([sp, &slots](const workload::ArrivalSchedule::Arrival& a) {
    const int src = static_cast<int>(a.src);
    const auto dst = sp->topo().senders[(src + 5) % kHosts]->id();
    sp->mtp_sender(a.src)->send_message(
        dst, a.bytes, {.dst_port = 80},
        [slot = &slots[src]](proto::MsgId, SimTime fct) {
          ++slot->completed;
          slot->cell ^= mix64(slot->cell ^ static_cast<std::uint64_t>(fct.ns()));
        });
  });

  s->run(200_ms);
  FabricResult r;
  for (const Slot& slot : slots) {
    r.completion_digest ^= slot.cell;
    r.completed += slot.completed;
  }
  r.fault_digest = inj.digest();
  r.flaps = inj.flaps_executed();
  r.windows = s->windows();
  return r;
}

TEST(ShardedScenario, FabricDigestsInvariantAcrossShardCounts) {
  const FabricResult one = run_fabric(/*seed=*/42, /*shards=*/1);
  EXPECT_EQ(one.completed, 48u);
  EXPECT_GT(one.flaps, 0u);
  for (unsigned shards : {2u, 4u}) {
    const FabricResult r = run_fabric(42, shards);
    EXPECT_EQ(r.completion_digest, one.completion_digest) << shards << " shards";
    EXPECT_EQ(r.fault_digest, one.fault_digest) << shards << " shards";
    EXPECT_EQ(r.completed, one.completed) << shards << " shards";
    EXPECT_EQ(r.flaps, one.flaps) << shards << " shards";
    EXPECT_GT(r.windows, 0u) << shards << " shards";
  }
}

TEST(ShardedScenario, WorkloadFctStatsMatchSerialOnReceiverTopology) {
  // dual_path builds everything on shard 0, so a 3-shard run exercises the
  // engine's no-cross-link path (infinite lookahead: one window runs all).
  auto run = [](unsigned shards) {
    workload::ArrivalSchedule sched;
    SimTime t = 1_us;
    for (int m = 0; m < 10; ++m) {
      for (int snd = 0; snd < 2; ++snd) {
        sched.add(t, static_cast<std::uint32_t>(snd), 20'000);
        t += 2_us;
      }
    }
    auto s = scenario::ScenarioBuilder()
                 .seed(3)
                 .shards(shards)
                 .topology(scenario::topo::dual_path(2))
                 .forwarding(scenario::Forwarding::kMessageAware)
                 .transport("mtp")
                 .workload(std::move(sched))
                 .build();
    s->run();
    return std::make_tuple(s->fct().count(), s->fct().p50_us(), s->fct().p99_us(),
                           s->fct().total_bytes(), s->replayed());
  };
  EXPECT_EQ(run(1), run(3));
}

// --- deterministic trace merge ----------------------------------------------

TEST(ShardedTrace, MergedTraceIsTimeOrderedAndDeterministic) {
  auto run = [](unsigned shards) {
    telemetry::TraceSink::set_enabled(true);
    telemetry::TraceSink& sink = telemetry::trace();
    sink.set_capacity(1 << 16);  // also clears
    ping(shards);
    auto events = sink.events();
    telemetry::TraceSink::set_enabled(false);
    return events;
  };
  auto key = [](const telemetry::TraceEvent& e) {
    return std::make_tuple(e.t.ns(), static_cast<int>(e.type), e.component,
                           e.bytes, e.msg_id, e.pkt_num);
  };

  const auto a = run(2);
  const auto b = run(2);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(key(a[i]), key(b[i])) << "event " << i;
    if (i) EXPECT_LE(a[i - 1].t.ns(), a[i].t.ns()) << "merge not time-ordered";
  }

  // Same event population as the serial run. Equal-timestamp events merge in
  // (t, shard) order, which may differ from serial execution order, so the
  // comparison sorts both sides by the same key.
  auto serial = run(1);
  ASSERT_EQ(serial.size(), a.size());
  std::vector<std::tuple<std::int64_t, int, std::string, std::uint32_t,
                         std::uint64_t, std::uint32_t>>
      ka, ks;
  for (const auto& e : a) ka.push_back(key(e));
  for (const auto& e : serial) ks.push_back(key(e));
  std::sort(ka.begin(), ka.end());
  std::sort(ks.begin(), ks.end());
  EXPECT_EQ(ka, ks);
}

}  // namespace
}  // namespace mtp
