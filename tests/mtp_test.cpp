// MTP core tests: connectionless message transport, SACK/NACK recovery,
// pathlet congestion control (per-algorithm and end-to-end), path discovery,
// exclusion, priorities, and traffic-class separation.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mtp/cc_algorithm.hpp"
#include "mtp/endpoint.hpp"
#include "stats/stats.hpp"

namespace mtp::core {
namespace {

using namespace mtp::sim::literals;
using mtp::testing::HostPair;
using sim::Bandwidth;
using sim::SimTime;

// ------------------------------------------------- cc algorithm unit tests

TEST(DctcpCc, GrowsWithoutMarksShrinksWithMarks) {
  CcConfig cfg;
  DctcpCc cc(cfg);
  const auto w0 = cc.window_bytes();
  for (int i = 0; i < 20; ++i) {
    cc.on_feedback({proto::FeedbackType::kEcn, 0}, 1000);
    cc.on_ack(1000, 10_us);
  }
  EXPECT_GT(cc.window_bytes(), w0);  // slow start growth

  // Saturate with marks: alpha rises, window decays toward the floor.
  const auto w1 = cc.window_bytes();
  for (int i = 0; i < 2000; ++i) {
    cc.on_feedback({proto::FeedbackType::kEcn, 1}, 1000);
    cc.on_ack(1000, 10_us);
  }
  EXPECT_LT(cc.window_bytes(), w1);
  EXPECT_GT(cc.alpha(), 0.5);
}

TEST(DctcpCc, WindowNeverBelowOneMss) {
  CcConfig cfg;
  DctcpCc cc(cfg);
  for (int i = 0; i < 100; ++i) cc.on_loss(LossKind::kTimeout);
  EXPECT_GE(cc.window_bytes(), static_cast<std::int64_t>(cfg.mss));
}

TEST(RcpCc, WindowIsRateTimesRtt) {
  CcConfig cfg;
  RcpCc cc(cfg);
  cc.on_feedback({proto::FeedbackType::kRate, 10'000'000'000}, 1000);  // 10 Gb/s
  cc.on_ack(1000, 10_us);
  // 10 Gb/s x 10us = 12500 bytes.
  EXPECT_NEAR(static_cast<double>(cc.window_bytes()), 12500, 1500);
}

TEST(RcpCc, TracksRateChangesImmediately) {
  CcConfig cfg;
  RcpCc cc(cfg);
  for (int i = 0; i < 50; ++i) {
    cc.on_feedback({proto::FeedbackType::kRate, 100'000'000'000}, 1000);
    cc.on_ack(1000, 10_us);
  }
  const auto w_fast = cc.window_bytes();
  for (int i = 0; i < 50; ++i) {
    cc.on_feedback({proto::FeedbackType::kRate, 1'000'000'000}, 1000);
    cc.on_ack(1000, 10_us);
  }
  EXPECT_LT(cc.window_bytes(), w_fast / 10);
}

TEST(SwiftCc, ShrinksAboveTargetDelayGrowsBelow) {
  CcConfig cfg;
  cfg.swift_target_delay = 30_us;
  SwiftCc cc(cfg);
  const auto w0 = cc.window_bytes();
  for (int i = 0; i < 50; ++i) {
    cc.on_feedback({proto::FeedbackType::kDelay, 1'000}, 1000);  // 1us: below target
    cc.on_ack(1000, 10_us);
  }
  EXPECT_GT(cc.window_bytes(), w0);
  for (int i = 0; i < 200; ++i) {
    cc.on_feedback({proto::FeedbackType::kDelay, 300'000}, 1000);  // 300us: way above
    cc.on_ack(1000, 10_us);
  }
  EXPECT_LT(cc.window_bytes(), w0);
}

TEST(AimdCc, HalvesOnLoss) {
  CcConfig cfg;
  AimdCc cc(cfg);
  for (int i = 0; i < 30; ++i) cc.on_ack(1000, 10_us);
  const auto w = cc.window_bytes();
  cc.on_loss(LossKind::kTimeout);
  EXPECT_NEAR(static_cast<double>(cc.window_bytes()), static_cast<double>(w) / 2, 1.0);
}

TEST(CcFactory, MapsFeedbackTypeToAlgorithm) {
  CcConfig cfg;
  EXPECT_EQ(make_cc(proto::FeedbackType::kEcn, cfg)->name(), "dctcp");
  EXPECT_EQ(make_cc(proto::FeedbackType::kRate, cfg)->name(), "rcp");
  EXPECT_EQ(make_cc(proto::FeedbackType::kDelay, cfg)->name(), "swift");
  EXPECT_EQ(make_cc(proto::FeedbackType::kNone, cfg)->name(), "aimd");
}

// --------------------------------------------------- message transport

struct MtpPair {
  HostPair t;
  MtpEndpoint src;
  MtpEndpoint dst;

  explicit MtpPair(MtpConfig cfg = {},
                   sim::Bandwidth bw = sim::Bandwidth::gbps(100),
                   sim::SimTime delay = 1_us,
                   net::DropTailQueue::Config qcfg = {.capacity_pkts = 128,
                                                      .ecn_threshold_pkts = 20})
      : t(bw, delay, qcfg), src(*t.a, cfg), dst(*t.b, cfg) {}
};

TEST(MtpTransport, DeliversSingleMessageWithoutConnectionSetup) {
  MtpPair p;
  std::optional<ReceivedMessage> got;
  p.dst.listen(80, [&](const ReceivedMessage& m) { got = m; });
  bool done = false;
  p.src.send_message(p.t.b->id(), 5000, {.dst_port = 80},
                     [&](proto::MsgId, SimTime) { done = true; });
  p.t.sim().run(10_ms);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->bytes, 5000);
  EXPECT_EQ(got->src, p.t.a->id());
  EXPECT_TRUE(done);
  EXPECT_EQ(p.src.outstanding_messages(), 0u);
}

class MtpMessageSizes : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(MtpMessageSizes, DeliversExactly) {
  MtpPair p;
  std::int64_t got = 0;
  p.dst.listen(80, [&](const ReceivedMessage& m) { got += m.bytes; });
  p.src.send_message(p.t.b->id(), GetParam(), {.dst_port = 80});
  p.t.sim().run(100_ms);
  EXPECT_EQ(got, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, MtpMessageSizes,
                         ::testing::Values(1, 999, 1000, 1001, 16'384, 250'000,
                                           2'000'000));

TEST(MtpTransport, PreservesMessageMetadata) {
  MtpPair p;
  std::optional<ReceivedMessage> got;
  p.dst.listen(443, [&](const ReceivedMessage& m) { got = m; });
  MessageOptions opts;
  opts.priority = 9;
  opts.tc = 3;
  opts.src_port = 5555;
  opts.dst_port = 443;
  opts.app = net::AppData{"get:user/42", ""};
  p.src.send_message(p.t.b->id(), 3000, opts);
  p.t.sim().run(10_ms);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->priority, 9);
  EXPECT_EQ(got->tc, 3);
  EXPECT_EQ(got->src_port, 5555);
  EXPECT_EQ(got->dst_port, 443);
  ASSERT_TRUE(got->app.has_value());
  EXPECT_EQ(got->app->key, "get:user/42");
}

TEST(MtpTransport, ManyInterleavedMessagesAllComplete) {
  MtpPair p;
  int completed = 0;
  p.dst.listen(80, [&](const ReceivedMessage&) {});
  for (int i = 0; i < 50; ++i) {
    p.src.send_message(p.t.b->id(), 10'000 + i * 100, {.dst_port = 80},
                       [&](proto::MsgId, SimTime) { ++completed; });
  }
  p.t.sim().run(100_ms);
  EXPECT_EQ(completed, 50);
  EXPECT_EQ(p.dst.msgs_delivered(), 50u);
}

TEST(MtpTransport, MessagesToDifferentPortsRouteToDifferentHandlers) {
  MtpPair p;
  int a = 0, b = 0, other = 0;
  p.dst.listen(1, [&](const ReceivedMessage&) { ++a; });
  p.dst.listen(2, [&](const ReceivedMessage&) { ++b; });
  p.dst.listen_any([&](const ReceivedMessage&) { ++other; });
  p.src.send_message(p.t.b->id(), 100, {.dst_port = 1});
  p.src.send_message(p.t.b->id(), 100, {.dst_port = 2});
  p.src.send_message(p.t.b->id(), 100, {.dst_port = 3});
  p.t.sim().run(10_ms);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(other, 1);
}

TEST(MtpLoss, RecoversFromQueueDropsAndCompletes) {
  MtpPair p({}, Bandwidth::gbps(100), 1_us,
            {.capacity_pkts = 8, .ecn_threshold_pkts = 0});
  std::int64_t got = 0;
  p.dst.listen(80, [&](const ReceivedMessage& m) { got += m.bytes; });
  p.src.send_message(p.t.b->id(), 500'000, {.dst_port = 80});
  p.t.sim().run(100_ms);
  EXPECT_EQ(got, 500'000);
  EXPECT_GT(p.src.pkts_retransmitted(), 0u);
}

TEST(MtpLoss, LongTransferSaturatesWithEcnPathlet) {
  MtpPair p({}, Bandwidth::gbps(10), 2_us,
            {.capacity_pkts = 128, .ecn_threshold_pkts = 20});
  p.t.a_to_sw->set_pathlet({.id = 1, .feedback = proto::FeedbackType::kEcn});
  stats::ThroughputMeter meter(100_us);
  p.dst.listen(80, [&](const ReceivedMessage& m) {
    meter.record(p.t.sim().now(), m.bytes);
  });
  // Stream of 100KB messages, a few outstanding at a time.
  int outstanding = 0;
  std::function<void()> feed = [&] {
    while (outstanding < 4) {
      ++outstanding;
      p.src.send_message(p.t.b->id(), 100'000, {.dst_port = 80},
                         [&](proto::MsgId, SimTime) {
                           --outstanding;
                           feed();
                         });
    }
  };
  feed();
  p.t.sim().run(10_ms);
  EXPECT_GT(meter.average_gbps(), 8.0);
}

TEST(MtpLoss, EcnPathletKeepsQueueNearThreshold) {
  MtpPair p({}, Bandwidth::gbps(10), 2_us,
            {.capacity_pkts = 128, .ecn_threshold_pkts = 20});
  p.t.a_to_sw->set_pathlet({.id = 1, .feedback = proto::FeedbackType::kEcn});
  p.dst.listen(80, [&](const ReceivedMessage&) {});
  p.src.send_message(p.t.b->id(), 20'000'000, {.dst_port = 80});
  std::size_t peak = 0;
  sim::PeriodicTask probe(p.t.sim(), 10_us, [&] {
    peak = std::max(peak, p.t.a_to_sw->queue().len_pkts());
  });
  probe.start(3_ms);
  p.t.sim().run(10_ms);
  EXPECT_LT(peak, 70u);  // DCTCP-style control around K=20, not buffer-filling
  EXPECT_GT(peak, 2u);   // but the link is actually loaded
}

TEST(MtpPathlets, DiscoversPathFromFeedback) {
  MtpPair p;
  p.t.a_to_sw->set_pathlet({.id = 11, .feedback = proto::FeedbackType::kEcn});
  p.t.sw_to_b->set_pathlet({.id = 22, .feedback = proto::FeedbackType::kEcn});
  p.dst.listen(80, [&](const ReceivedMessage&) {});
  p.src.send_message(p.t.b->id(), 50'000, {.dst_port = 80});
  p.t.sim().run(10_ms);
  const auto path = p.src.current_path(p.t.b->id());
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 11u);
  EXPECT_EQ(path[1], 22u);
  EXPECT_NE(p.src.pathlet_cc(11, 0), nullptr);
  EXPECT_NE(p.src.pathlet_cc(22, 0), nullptr);
  EXPECT_EQ(p.src.pathlet_cc(11, 0)->name(), "dctcp");
}

TEST(MtpPathlets, PerTcCongestionStateIsSeparate) {
  MtpPair p;
  p.t.a_to_sw->set_pathlet({.id = 11, .feedback = proto::FeedbackType::kEcn});
  p.dst.listen(80, [&](const ReceivedMessage&) {});
  p.src.send_message(p.t.b->id(), 50'000, {.tc = 1, .dst_port = 80});
  p.src.send_message(p.t.b->id(), 50'000, {.tc = 2, .dst_port = 80});
  p.t.sim().run(10_ms);
  const auto* cc1 = p.src.pathlet_cc(11, 1);
  const auto* cc2 = p.src.pathlet_cc(11, 2);
  ASSERT_NE(cc1, nullptr);
  ASSERT_NE(cc2, nullptr);
  EXPECT_NE(cc1, cc2);  // distinct evolving state per (pathlet, TC)
}

TEST(MtpPathlets, RcpPathletUsesExplicitRate) {
  MtpPair p;
  p.t.a_to_sw->set_pathlet({.id = 5,
                            .feedback = proto::FeedbackType::kRate,
                            .rcp_rtt = 10_us});
  p.dst.listen(80, [&](const ReceivedMessage&) {});
  p.src.send_message(p.t.b->id(), 100'000, {.dst_port = 80});
  p.t.sim().run(10_ms);
  const auto* cc = p.src.pathlet_cc(5, 0);
  ASSERT_NE(cc, nullptr);
  EXPECT_EQ(cc->name(), "rcp");
  EXPECT_GT(static_cast<const RcpCc*>(cc)->rate_bps(), 0);
}

TEST(MtpPriority, HigherPriorityMessageFinishesFirstUnderContention) {
  // Slow link so admission order matters; equal-size messages.
  MtpPair p({}, Bandwidth::gbps(1), 2_us);
  std::vector<int> completion_order;
  p.dst.listen(80, [&](const ReceivedMessage& m) {
    completion_order.push_back(m.priority);
  });
  // Low priority first into the queue, then high: high must win.
  for (int i = 0; i < 3; ++i) {
    p.src.send_message(p.t.b->id(), 200'000, {.priority = 1, .dst_port = 80});
  }
  p.src.send_message(p.t.b->id(), 200'000, {.priority = 7, .dst_port = 80});
  p.t.sim().run(100_ms);
  ASSERT_EQ(completion_order.size(), 4u);
  EXPECT_EQ(completion_order.front(), 7);
}

TEST(MtpExclusion, ExcludedPathletRidesInHeadersAndExpires) {
  MtpPair p;
  p.src.exclude_pathlet(99, 1_ms);
  p.dst.listen(80, [&](const ReceivedMessage&) {});
  p.src.send_message(p.t.b->id(), 1000, {.dst_port = 80});
  p.t.sim().run(5_ms);  // past expiry
  p.src.send_message(p.t.b->id(), 1000, {.dst_port = 80});
  p.t.sim().run(20_ms);
  EXPECT_EQ(p.dst.msgs_delivered(), 2u);
}

TEST(MtpExclusion, MessageAwareSwitchAvoidsExcludedPathlet) {
  // Two parallel paths from the switch to b; exclude the first's pathlet.
  net::Network net;
  net::Host* a = net.add_host("a");
  net::Host* b = net.add_host("b");
  net::Switch* sw = net.add_switch("sw");
  net.connect(*a, *sw, Bandwidth::gbps(100), 1_us);
  auto p1 = net.connect(*sw, *b, Bandwidth::gbps(100), 1_us);
  auto p2 = net.connect(*sw, *b, Bandwidth::gbps(100), 1_us);
  p1.forward->set_pathlet({.id = 1, .feedback = proto::FeedbackType::kEcn});
  p2.forward->set_pathlet({.id = 2, .feedback = proto::FeedbackType::kEcn});
  sw->add_route(a->id(), 0);
  // Switch out-ports: 0 = back toward a, 1 = first sw->b link, 2 = second.
  sw->add_route(b->id(), 1);
  sw->add_route(b->id(), 2);
  sw->set_policy(std::make_unique<net::MessageAwarePolicy>());

  MtpEndpoint src(*a, {});
  MtpEndpoint dst(*b, {});
  dst.listen(80, [](const ReceivedMessage&) {});
  src.exclude_pathlet(1, 100_ms);
  src.send_message(b->id(), 200'000, {.dst_port = 80});
  net.simulator().run(50_ms);
  EXPECT_EQ(p1.forward->stats().pkts_delivered, 0u);
  EXPECT_GT(p2.forward->stats().pkts_delivered, 100u);
}

TEST(MtpDuplicates, RetransmittedDataOfDeliveredMessageIsReAcked) {
  // Force duplicate deliveries by dropping ACKs: tiny reverse queue.
  MtpPair p;
  // Shrink the b->sw reverse link queue to drop ACK bursts... instead use
  // data-path drops: tiny forward queue ensures retransmissions, and the
  // completed-message cache must keep re-acking so the sender finishes.
  MtpPair q({}, Bandwidth::gbps(100), 1_us, {.capacity_pkts = 4});
  std::int64_t got = 0;
  q.dst.listen(80, [&](const ReceivedMessage& m) { got += m.bytes; });
  q.src.send_message(q.t.b->id(), 300'000, {.dst_port = 80});
  q.t.sim().run(200_ms);
  EXPECT_EQ(got, 300'000);
  EXPECT_EQ(q.src.outstanding_messages(), 0u);
  (void)p;
}

TEST(MtpIndependence, OneStalledDestinationDoesNotBlockOthers) {
  // a sends to b (reachable) and to an unrouted destination (blackhole):
  // messages to b must still complete (per-message independence).
  MtpPair p;
  std::int64_t got = 0;
  p.dst.listen(80, [&](const ReceivedMessage& m) { got += m.bytes; });
  p.src.send_message(777 /* no route */, 50'000, {.dst_port = 80});
  p.src.send_message(p.t.b->id(), 50'000, {.dst_port = 80});
  p.t.sim().run(20_ms);
  EXPECT_EQ(got, 50'000);
}

TEST(MtpRtt, SrttTracksPath) {
  MtpPair p({}, Bandwidth::gbps(100), 5_us);
  p.dst.listen(80, [&](const ReceivedMessage&) {});
  p.src.send_message(p.t.b->id(), 100'000, {.dst_port = 80});
  p.t.sim().run(20_ms);
  EXPECT_GT(p.src.srtt().us(), 19.0);
  EXPECT_LT(p.src.srtt().us(), 100.0);
}

}  // namespace
}  // namespace mtp::core
