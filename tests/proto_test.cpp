// Wire-format tests: round-trip serialization of every header, malformed
// input rejection, and a seeded property sweep over random MTP headers.
#include <gtest/gtest.h>

#include "proto/mtp_header.hpp"
#include "proto/tcp_header.hpp"
#include "sim/random.hpp"

namespace mtp::proto {
namespace {

MtpHeader sample_header() {
  MtpHeader h;
  h.src_port = 1234;
  h.dst_port = 80;
  h.type = MtpPacketType::kData;
  h.msg_id = 0xdeadbeefcafe;
  h.priority = 7;
  h.tc = 2;
  h.msg_len_bytes = 1'000'000;
  h.msg_len_pkts = 1000;
  h.pkt_num = 41;
  h.pkt_offset = 41'000;
  h.pkt_len = 1000;
  h.path_exclude() = {{5, 1}, {9, 0}};
  h.path_feedback() = {{5, 1, {FeedbackType::kEcn, 1}},
                     {7, 1, {FeedbackType::kRate, 40'000'000'000}}};
  h.ack_path_feedback() = {{5, 1, {FeedbackType::kDelay, 12'345}}};
  h.sack() = {{12, 3}, {12, 4}};
  h.nack() = {{13, 0}};
  return h;
}

TEST(MtpHeader, RoundTripsAllFields) {
  const MtpHeader h = sample_header();
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  const auto parsed = MtpHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);
}

TEST(MtpHeader, WireSizeMatchesSerializedLength) {
  const MtpHeader h = sample_header();
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  EXPECT_EQ(buf.size(), h.wire_size());
}

TEST(MtpHeader, EmptyListsRoundTrip) {
  MtpHeader h;
  h.msg_id = 1;
  h.msg_len_bytes = 10;
  h.msg_len_pkts = 1;
  h.pkt_len = 10;
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  // Five u16 list counts + the stream and overload presence bytes.
  EXPECT_EQ(buf.size(), MtpHeader::kFixedSize + 12);
  const auto parsed = MtpHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);
}

TEST(MtpHeader, TruncatedInputRejectedAtEveryLength) {
  const MtpHeader h = sample_header();
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    EXPECT_FALSE(MtpHeader::parse(std::span(buf.data(), len)).has_value())
        << "accepted truncation at " << len;
  }
}

TEST(MtpHeader, RejectsBadPacketType) {
  MtpHeader h;
  h.msg_len_pkts = 1;
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  buf[4] = 0x77;  // type byte
  EXPECT_FALSE(MtpHeader::parse(buf).has_value());
}

TEST(MtpHeader, RejectsBadFeedbackType) {
  MtpHeader h = sample_header();
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  // Corrupt the first feedback TLV's type byte: it sits right after the
  // fixed part + exclude list (2 + 2*5 bytes) + feedback count (2) + path id
  // (4) + tc (1).
  const std::size_t pos = MtpHeader::kFixedSize + 2 + h.path_exclude().size() * 5 + 2 + 4 + 1;
  buf[pos] = 0x99;
  EXPECT_FALSE(MtpHeader::parse(buf).has_value());
}

TEST(MtpHeader, OverloadBlockRoundTrips) {
  MtpHeader h = sample_header();
  auto& ov = h.overload.ensure();
  ov.flags = kOverloadBusy | kOverloadExpired;
  ov.grant_bytes = 123'456;
  ov.deadline_ns = 987'654'321;
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  EXPECT_EQ(buf.size(), h.wire_size());
  const auto parsed = MtpHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);
  EXPECT_TRUE(parsed->has_overload());
  EXPECT_TRUE(parsed->overload->busy());
  EXPECT_TRUE(parsed->overload->expired());
  EXPECT_EQ(parsed->deadline_ns(), 987'654'321u);
}

TEST(MtpHeader, RejectsBadOverloadFlags) {
  MtpHeader h;
  h.msg_len_pkts = 1;
  h.overload.ensure().flags = kOverloadBusy;
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  buf[buf.size() - 17] = 0xf0;  // flags byte: reserved bits must be zero
  EXPECT_FALSE(MtpHeader::parse(buf).has_value());
}

TEST(MtpHeader, IsLastPkt) {
  MtpHeader h;
  h.msg_len_pkts = 3;
  h.pkt_num = 2;
  EXPECT_TRUE(h.is_last_pkt());
  h.pkt_num = 1;
  EXPECT_FALSE(h.is_last_pkt());
}

TEST(MtpHeader, AckOverheadIsModest) {
  // The paper (§4) worries about header growth; verify a typical ACK with a
  // couple of pathlets stays well under a TCP+options header's ~60 bytes
  // plus reasonable slack.
  MtpHeader ack;
  ack.type = MtpPacketType::kAck;
  ack.ack_path_feedback() = {{1, 0, {FeedbackType::kEcn, 1}},
                           {2, 0, {FeedbackType::kEcn, 0}}};
  ack.sack() = {{100, 5}};
  EXPECT_LE(ack.wire_size(), 100u);
}

// --- Property sweep: random headers must round-trip exactly.

class MtpHeaderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MtpHeaderFuzz, RandomHeaderRoundTrips) {
  sim::Rng rng(GetParam());
  MtpHeader h;
  h.src_port = static_cast<PortNum>(rng.next_u64());
  h.dst_port = static_cast<PortNum>(rng.next_u64());
  h.type = rng.bernoulli(0.5) ? MtpPacketType::kData : MtpPacketType::kAck;
  h.msg_id = rng.next_u64();
  h.priority = static_cast<std::uint8_t>(rng.next_u64());
  h.tc = static_cast<TrafficClassId>(rng.next_u64());
  h.msg_len_bytes = rng.next_u64() >> 20;
  h.msg_len_pkts = static_cast<std::uint32_t>(rng.next_u64());
  h.pkt_num = static_cast<std::uint32_t>(rng.next_u64());
  h.pkt_offset = rng.next_u64() >> 20;
  h.pkt_len = static_cast<std::uint32_t>(rng.next_u64());
  const auto n_excl = rng.uniform_int(0, 8);
  for (int i = 0; i < n_excl; ++i) {
    h.path_exclude().push_back({static_cast<PathletId>(rng.next_u64()),
                              static_cast<TrafficClassId>(rng.next_u64())});
  }
  auto random_feedback = [&rng] {
    return Feedback{static_cast<FeedbackType>(rng.uniform_int(0, 4)), rng.next_u64()};
  };
  for (int i = 0, n = static_cast<int>(rng.uniform_int(0, 8)); i < n; ++i) {
    h.path_feedback().push_back({static_cast<PathletId>(rng.next_u64()),
                               static_cast<TrafficClassId>(rng.next_u64()),
                               random_feedback()});
  }
  for (int i = 0, n = static_cast<int>(rng.uniform_int(0, 8)); i < n; ++i) {
    h.ack_path_feedback().push_back({static_cast<PathletId>(rng.next_u64()),
                                   static_cast<TrafficClassId>(rng.next_u64()),
                                   random_feedback()});
  }
  for (int i = 0, n = static_cast<int>(rng.uniform_int(0, 16)); i < n; ++i) {
    h.sack().push_back({rng.next_u64(), static_cast<std::uint32_t>(rng.next_u64())});
  }
  for (int i = 0, n = static_cast<int>(rng.uniform_int(0, 16)); i < n; ++i) {
    h.nack().push_back({rng.next_u64(), static_cast<std::uint32_t>(rng.next_u64())});
  }

  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  EXPECT_EQ(buf.size(), h.wire_size());
  const auto parsed = MtpHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MtpHeaderFuzz, ::testing::Range<std::uint64_t>(1, 33));

TEST(TcpHeader, RoundTrips) {
  TcpHeader h;
  h.src_port = 4242;
  h.dst_port = 443;
  h.seq = 1'000'000'007;
  h.ack = 999;
  h.flags = kTcpAck | kTcpEce;
  h.rwnd = 1 << 20;
  h.payload = 1448;
  h.sack() = {{1000, 2000}, {5000, 6000}};
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  EXPECT_EQ(buf.size(), h.wire_size());
  const auto parsed = TcpHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);
}

TEST(TcpHeader, RejectsTooManySackBlocks) {
  TcpHeader h;
  h.sack() = {{1, 2}, {3, 4}, {5, 6}};
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  buf[TcpHeader::kFixedSize - 1] = 9;  // corrupt the block count
  EXPECT_FALSE(TcpHeader::parse(buf).has_value());
}

TEST(TcpHeader, RejectsInvertedSackBlock) {
  TcpHeader h;
  h.sack() = {{100, 50}};
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  EXPECT_FALSE(TcpHeader::parse(buf).has_value());
}

TEST(TcpHeader, FlagHelpers) {
  TcpHeader h;
  h.flags = kTcpSyn | kTcpAck;
  EXPECT_TRUE(h.has(kTcpSyn));
  EXPECT_TRUE(h.has(kTcpAck));
  EXPECT_FALSE(h.has(kTcpFin));
}

TEST(TcpHeader, TruncatedRejected) {
  TcpHeader h;
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  buf.pop_back();
  EXPECT_FALSE(TcpHeader::parse(buf).has_value());
}

TEST(UdpHeader, RoundTrips) {
  UdpHeader h{53, 5353, 512};
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  EXPECT_EQ(buf.size(), UdpHeader::kWireSize);
  const auto parsed = UdpHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);
}

}  // namespace
}  // namespace mtp::proto
