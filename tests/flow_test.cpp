// sim::flow fluid model: analytic rate/completion checks, exact conservation,
// the flow-vs-packet oracle, shard invariance under link flaps, and the
// hybrid-fidelity gates (foreground FCT agreement + bulk event-cost ratio).
#include <gtest/gtest.h>

#include <vector>

#include "scenario/hybrid.hpp"
#include "scenario/scenario.hpp"
#include "sim/flow/fluid.hpp"

namespace mtp {
namespace {

using namespace mtp::sim::literals;
using sim::flow::FluidModel;

/// Bare model with cap fraction 1/1 so expectations are round numbers.
FluidModel::Config full_cap() {
  FluidModel::Config cfg;
  cfg.capacity_num = 1;
  cfg.capacity_den = 1;
  return cfg;
}

TEST(Fluid, SingleFlowExactCompletion) {
  sim::Simulator s;
  FluidModel fm(s, full_cap());
  const auto c = fm.add_conduit(10'000'000'000LL);  // 10 Gbps
  // 1.25 MB = 10^7 bits at 10 Gbps -> exactly 1 ms.
  fm.add_flow(5_us, {c}, 1'250'000);
  fm.start();
  s.run();
  EXPECT_TRUE(fm.flow_done(0));
  EXPECT_EQ(fm.flow_finish(0).ns(), (5_us).ns() + 1'000'000);
  EXPECT_EQ(fm.flow_delivered_bits(0), 10'000'000);
  EXPECT_EQ(fm.delivered_bits(c), 10'000'000);
  EXPECT_EQ(fm.violations(), 0u);
  EXPECT_EQ(fm.reserved_bps(c), 0);  // released on completion
}

TEST(Fluid, MaxMinThreeFlowsTwoConduits) {
  sim::Simulator s;
  FluidModel fm(s, full_cap());
  const auto a = fm.add_conduit(10'000'000'000LL);  // 10 Gbps
  const auto b = fm.add_conduit(20'000'000'000LL);  // 20 Gbps
  const std::int64_t big = 1'000'000'000;           // long-lived
  fm.add_flow(sim::SimTime::zero(), {a}, big);
  fm.add_flow(sim::SimTime::zero(), {a, b}, big);
  fm.add_flow(sim::SimTime::zero(), {b}, big);
  fm.start();
  s.run(1_us);
  // Progressive filling: A is the bottleneck (10/2 = 5 each for flows 0 and
  // 1), then flow 2 takes B's residual 20 - 5 = 15.
  EXPECT_EQ(fm.rate_bps(0), 5'000'000'000LL);
  EXPECT_EQ(fm.rate_bps(1), 5'000'000'000LL);
  EXPECT_EQ(fm.rate_bps(2), 15'000'000'000LL);
  EXPECT_EQ(fm.reserved_bps(a), 10'000'000'000LL);
  EXPECT_EQ(fm.reserved_bps(b), 20'000'000'000LL);
}

TEST(Fluid, RateCapFreezesBelowFairShare) {
  sim::Simulator s;
  FluidModel fm(s, full_cap());
  const auto c = fm.add_conduit(10'000'000'000LL);
  fm.add_flow(sim::SimTime::zero(), {c}, 1'000'000'000);
  fm.add_flow(sim::SimTime::zero(), {c}, 1'000'000'000, /*rate_cap_bps=*/2'000'000'000LL);
  fm.start();
  s.run(1_us);
  // The capped flow freezes at its cap; the other takes the rest.
  EXPECT_EQ(fm.rate_bps(0), 8'000'000'000LL);
  EXPECT_EQ(fm.rate_bps(1), 2'000'000'000LL);
}

TEST(Fluid, ArrivalReallocatesAndCompletionReleases) {
  sim::Simulator s;
  FluidModel fm(s, full_cap());
  const auto c = fm.add_conduit(10'000'000'000LL);
  // Flow 0: 10^7 bits. Alone it would finish at 1 ms; flow 1 (same size)
  // arrives at 0.4 ms and halves its rate.
  fm.add_flow(sim::SimTime::zero(), {c}, 1'250'000);
  fm.add_flow(400_us, {c}, 1'250'000);
  fm.start();
  s.run();
  // Flow 0: 4e6 bits by 0.4 ms, then 5 Gbps. Remaining 6e6 bits -> 1.2 ms
  // more -> 1.6 ms. Flow 1: at flow 0's finish it has 6e6 bits delivered,
  // 4e6 left at full 10 Gbps -> 2.0 ms.
  EXPECT_EQ(fm.flow_finish(0).ns(), 1'600'000);
  EXPECT_EQ(fm.flow_finish(1).ns(), 2'000'000);
  EXPECT_EQ(fm.violations(), 0u);
  EXPECT_EQ(fm.delivered_bits(c), 20'000'000);
}

TEST(Fluid, CapacityEventReshapesCompletion) {
  sim::Simulator s;
  FluidModel fm(s, full_cap());
  const auto c = fm.add_conduit(10'000'000'000LL);
  // 2e6 bits at 10 Gbps would finish at 200 us; halving the link at 100 us
  // leaves 1e6 bits at 5 Gbps -> 300 us total.
  fm.add_flow(sim::SimTime::zero(), {c}, 250'000);
  fm.set_capacity_at(100_us, c, 5'000'000'000LL);
  fm.start();
  s.run();
  EXPECT_EQ(fm.flow_finish(0).ns(), 300'000);
  EXPECT_EQ(fm.violations(), 0u);
}

TEST(Fluid, DownConduitStallsAndResumes) {
  sim::Simulator s;
  FluidModel fm(s, full_cap());
  const auto c = fm.add_conduit(10'000'000'000LL);
  // Without the flap: done at 200 us. Down over [50us, 150us): the stall
  // shifts completion by exactly the downtime -> 300 us.
  fm.add_flow(sim::SimTime::zero(), {c}, 250'000);
  fm.set_capacity_at(50_us, c, 0);
  fm.set_capacity_at(150_us, c, 10'000'000'000LL);
  fm.start();
  s.run();
  EXPECT_EQ(fm.flow_finish(0).ns(), 300'000);
  EXPECT_EQ(fm.rate_bps(0), 0);
  EXPECT_EQ(fm.violations(), 0u);
}

TEST(Fluid, ExternalLoadWindowSlowsFlow) {
  sim::Simulator s;
  FluidModel fm(s, full_cap());
  const auto c = fm.add_conduit(10'000'000'000LL);
  // A declared 6 Gbps packet burst over [100us, 200us) leaves 4 Gbps of
  // fluid capacity. 2e6 bits: 1e6 by 100us, 0.4e6 during the burst, the
  // last 0.6e6 at full rate in 60 us -> 260 us.
  fm.add_flow(sim::SimTime::zero(), {c}, 250'000);
  fm.add_load_at(100_us, c, 6'000'000'000LL);
  fm.add_load_at(200_us, c, -6'000'000'000LL);
  fm.start();
  s.run();
  EXPECT_EQ(fm.flow_finish(0).ns(), 260'000);
  EXPECT_EQ(fm.violations(), 0u);
}

TEST(Fluid, ZeroByteFlowCompletesOnArrival) {
  sim::Simulator s;
  FluidModel fm(s, full_cap());
  const auto c = fm.add_conduit(1'000'000'000LL);
  bool done = false;
  sim::SimTime when;
  fm.add_flow(7_us, {c}, 0, 0, [&](std::uint32_t, sim::SimTime at) {
    done = true;
    when = at;
  });
  fm.start();
  s.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(when.ns(), (7_us).ns());
}

TEST(Fluid, ConservationAcrossStaggeredMesh) {
  // 24 flows over 6 conduits with staggered arrivals and a mid-run capacity
  // dip: when everything completes, per-conduit delivered bits must equal
  // the sum over flows routed through the conduit, bit-exact.
  sim::Simulator s;
  FluidModel fm(s, full_cap());
  std::vector<std::uint32_t> cs;
  for (int i = 0; i < 6; ++i) {
    cs.push_back(fm.add_conduit(10'000'000'000LL + i * 1'000'000'000LL));
  }
  struct Spec {
    std::vector<std::uint32_t> path;
    std::int64_t bytes;
  };
  std::vector<Spec> specs;
  std::uint64_t rng = 12345;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int f = 0; f < 24; ++f) {
    const std::uint32_t a = static_cast<std::uint32_t>(next() % 6);
    std::uint32_t b = static_cast<std::uint32_t>(next() % 6);
    if (b == a) b = (b + 1) % 6;
    Spec sp;
    sp.path = {cs[a], cs[b]};
    sp.bytes = 50'000 + static_cast<std::int64_t>(next() % 200'000);
    fm.add_flow(sim::SimTime::nanoseconds(static_cast<std::int64_t>(next() % 50'000)),
                sp.path, sp.bytes, (f % 3 == 0) ? 3'000'000'000LL : 0);
    specs.push_back(std::move(sp));
  }
  fm.set_capacity_at(30_us, cs[0], 2'000'000'000LL);
  fm.set_capacity_at(60_us, cs[0], 10'000'000'000LL);
  fm.start();
  s.run();

  EXPECT_EQ(fm.completed(), 24u);
  EXPECT_EQ(fm.violations(), 0u);
  std::vector<std::int64_t> expect(6, 0);
  for (std::size_t f = 0; f < specs.size(); ++f) {
    EXPECT_EQ(fm.flow_delivered_bits(static_cast<std::uint32_t>(f)),
              specs[f].bytes * 8);
    for (const std::uint32_t c : specs[f].path) expect[c] += specs[f].bytes * 8;
  }
  for (int c = 0; c < 6; ++c) {
    EXPECT_EQ(fm.delivered_bits(cs[c]), expect[c]) << "conduit " << c;
    EXPECT_EQ(fm.reserved_bps(cs[c]), 0) << "conduit " << c;
  }
}

TEST(Fluid, EventCostIsIndependentOfTransferSize) {
  // The whole point: a 100 MB transfer costs the same handful of model
  // events as a 1 KB one (packet-level would cost ~100k packet events).
  sim::Simulator s;
  FluidModel fm(s, full_cap());
  const auto c = fm.add_conduit(100'000'000'000LL);
  fm.add_flow(sim::SimTime::zero(), {c}, 100'000'000);
  fm.start();
  s.run();
  EXPECT_TRUE(fm.flow_done(0));
  EXPECT_LE(fm.events_scheduled(), 4u);
}

// --- scenario-level: residual serialization, oracle, shard invariance -----

TEST(FlowScenario, FluidReservationInflatesForegroundSerialization) {
  auto make = [](bool with_bulk) {
    workload::ArrivalSchedule sched;
    sim::SimTime t = 100_us;
    for (int m = 0; m < 20; ++m) {
      sched.add(t, 1, 100'000);
      t += 30_us;
    }
    scenario::ScenarioBuilder b;
    b.seed(5)
        .topology(scenario::topo::shared_bottleneck())
        .transport("mtp")
        .workload(std::move(sched));
    if (with_bulk) {
      b.bulk_mode(scenario::BulkMode::kFlowLevel)
          .bulk_transfer({.at = sim::SimTime::zero(),
                          .src = 0,
                          .dst = scenario::kBulkToReceiver,
                          .bytes = 100'000'000,  // outlives the workload
                          .rate_cap_bps = 0});
    }
    return b.build();
  };
  auto base = make(false);
  base->run();
  auto loaded = make(true);
  loaded->run();
  // An uncapped fluid flow claims 95% of the bottleneck; the foreground
  // drains at the 5% residual, so its FCTs must inflate massively.
  EXPECT_EQ(base->fct().count(), 20u);
  EXPECT_EQ(loaded->fct().count(), 20u);
  EXPECT_GT(loaded->fct().p50_us(), 5.0 * base->fct().p50_us());
  // And the reservation is visible at the link itself.
  auto* fm = loaded->flow_model();
  ASSERT_NE(fm, nullptr);
  EXPECT_TRUE(fm->flow_done(0) || fm->rate_bps(0) > 0);
}

TEST(FlowScenario, OracleFlowMatchesPacedPacketCompletionTimes) {
  // Same three rate-capped transfers, run packet-paced and fluid. Caps sum
  // below every link's rate, so contention never distorts either side, and
  // the completion times must agree to within the per-packet effects the
  // fluid model abstracts away (serialization, propagation, headers).
  const std::vector<workload::BulkTransfer> bulk = {
      {.at = 10_us, .src = 0, .dst = scenario::kBulkToReceiver, .bytes = 2'000'000,
       .rate_cap_bps = 10'000'000'000LL},
      {.at = 10_us, .src = 1, .dst = scenario::kBulkToReceiver, .bytes = 5'000'000,
       .rate_cap_bps = 20'000'000'000LL},
      {.at = 200_us, .src = 2, .dst = scenario::kBulkToReceiver, .bytes = 1'000'000,
       .rate_cap_bps = 5'000'000'000LL},
  };
  auto run = [&](scenario::BulkMode mode) {
    auto s = scenario::ScenarioBuilder()
                 .seed(5)
                 .topology(scenario::topo::incast(4))
                 .transport("mtp")
                 .bulk_mode(mode)
                 .bulk_transfers(bulk)
                 .build();
    s->run();
    return s->bulk_completions();
  };
  const auto pkt = run(scenario::BulkMode::kPacket);
  const auto flow = run(scenario::BulkMode::kFlowLevel);
  ASSERT_EQ(pkt.size(), bulk.size());
  ASSERT_EQ(flow.size(), bulk.size());
  for (std::size_t i = 0; i < bulk.size(); ++i) {
    EXPECT_EQ(pkt[i].first, flow[i].first);
    const double p = static_cast<double>(pkt[i].second.ns());
    const double f = static_cast<double>(flow[i].second.ns());
    const double dur_pkt = p - static_cast<double>(bulk[i].at.ns());
    EXPECT_LT(std::abs(p - f) / dur_pkt, 0.02)
        << "transfer " << i << ": packet " << p << " ns vs flow " << f << " ns";
  }
}

TEST(FlowScenario, FlowModeUsesFarFewerEventsThanPacket) {
  auto run = [&](scenario::BulkMode mode) {
    auto s = scenario::ScenarioBuilder()
                 .seed(5)
                 .topology(scenario::topo::incast(4))
                 .transport("mtp")
                 .bulk_mode(mode)
                 .bulk_transfer({.at = 10_us, .src = 0,
                                 .dst = scenario::kBulkToReceiver,
                                 .bytes = 10'000'000,
                                 .rate_cap_bps = 20'000'000'000LL})
                 .build();
    return s->run();
  };
  const std::uint64_t pkt_events = run(scenario::BulkMode::kPacket);
  const std::uint64_t flow_events = run(scenario::BulkMode::kFlowLevel);
  EXPECT_GE(pkt_events, 5 * flow_events)
      << "packet " << pkt_events << " vs flow " << flow_events;
}

TEST(FlowScenario, ShardInvariantAcrossFlapsAndSeeds) {
  // Chaos gate: a fat-tree bulk ring with a link flap mid-run, over several
  // seeds and shard counts. Completion times, re-solve counts and the
  // violation counter must be bit-identical for every partitioning.
  for (const std::uint64_t seed : {11ull, 23ull, 47ull}) {
    struct Snap {
      std::vector<std::pair<std::uint32_t, sim::SimTime>> done;
      std::uint64_t resolves = 0;
      std::uint64_t violations = 0;
    };
    auto run = [&](unsigned shards) {
      auto s = scenario::ScenarioBuilder()
                   .seed(seed)
                   .shards(shards)
                   .topology(scenario::topo::fat_tree({.k = 4}))
                   .transport("mtp")
                   .bulk_mode(scenario::BulkMode::kFlowLevel)
                   .bulk_transfers(workload::bulk_ring(
                       16, 12, 400'000 + static_cast<std::int64_t>(seed) * 1000, 5,
                       sim::SimTime::microseconds(2), 15'000'000'000LL))
                   .flap(0, 30_us, 40_us)
                   .build();
      s->run();
      Snap snap;
      snap.done = s->bulk_completions();
      snap.resolves = s->flow_model(0)->resolves();
      snap.violations = s->flow_model(0)->violations();
      return snap;
    };
    const Snap s1 = run(1);
    for (const unsigned n : {2u, 4u}) {
      const Snap sn = run(n);
      EXPECT_EQ(s1.done, sn.done) << "seed " << seed << " shards " << n;
      EXPECT_EQ(s1.resolves, sn.resolves) << "seed " << seed << " shards " << n;
      EXPECT_EQ(sn.violations, 0u) << "seed " << seed << " shards " << n;
    }
    ASSERT_EQ(s1.done.size(), 12u) << "seed " << seed;
    EXPECT_EQ(s1.violations, 0u);
  }
}

TEST(FlowScenario, ForegroundCouplingSlowsFluidFlows) {
  // With bulk_foreground_coupling(true), declared packet bursts become load
  // windows: the fluid flow must finish later than without coupling, and the
  // model must re-solve more often.
  auto run = [&](bool coupling) {
    workload::ArrivalSchedule sched;
    sim::SimTime t = 20_us;
    for (int m = 0; m < 30; ++m) {
      sched.add(t, 0, 200'000);
      t += 10_us;
    }
    scenario::ScenarioBuilder b;
    b.seed(5)
        .topology(scenario::topo::shared_bottleneck())
        .transport("mtp")
        .workload(std::move(sched))
        .bulk_mode(scenario::BulkMode::kFlowLevel)
        .bulk_transfer({.at = sim::SimTime::zero(), .src = 0,
                        .dst = scenario::kBulkToReceiver,
                        .bytes = 2'000'000, .rate_cap_bps = 0});
    // The bulk flow shares tenant1's uplink with the foreground bursts.
    b.bulk_foreground_coupling(coupling);
    auto s = b.build();
    s->run();
    return std::pair<sim::SimTime, std::uint64_t>{
        s->flow_model(0)->flow_finish(0), s->flow_model(0)->resolves()};
  };
  const auto [t_off, solves_off] = run(false);
  const auto [t_on, solves_on] = run(true);
  EXPECT_GT(t_on.ns(), t_off.ns());
  EXPECT_GT(solves_on, solves_off);
}

// --- hybrid fidelity gates (the PR's acceptance criteria) -----------------

TEST(HybridFidelity, Fig3ForegroundPercentilesAgreeWithin5Pct) {
  const auto r = scenario::hybrid::fig3_fidelity();
  EXPECT_EQ(r.bulk_count, 4u);
  EXPECT_GT(r.fg_count, 0u);
  EXPECT_LT(r.fct_delta_pct, 5.0)
      << "p50 pkt/flow " << r.p50_packet << "/" << r.p50_flow << " p99 "
      << r.p99_packet << "/" << r.p99_flow;
  EXPECT_GE(r.bulk_event_ratio, 5.0);
  // The background must actually bite: loaded percentiles above the no-bulk
  // control in both representations.
  EXPECT_GT(r.p99_packet, r.p99_none);
  EXPECT_GT(r.p99_flow, r.p99_none);
}

TEST(HybridFidelity, Fig7ForegroundPercentilesAgreeWithin5Pct) {
  const auto r = scenario::hybrid::fig7_fidelity();
  EXPECT_EQ(r.bulk_count, 1u);
  EXPECT_LT(r.fct_delta_pct, 5.0)
      << "p50 pkt/flow " << r.p50_packet << "/" << r.p50_flow << " p99 "
      << r.p99_packet << "/" << r.p99_flow;
  EXPECT_GE(r.bulk_event_ratio, 5.0);
  EXPECT_GT(r.p99_packet, r.p99_none);
  EXPECT_GT(r.p99_flow, r.p99_none);
}

TEST(HybridFidelity, TenantIsolationDigestShardInvariant) {
  // k=8 keeps the test fast; bench_scale runs the k=32 version.
  const auto r1 = scenario::hybrid::tenant_isolation(/*k=*/8, /*shards=*/1);
  const auto r2 = scenario::hybrid::tenant_isolation(/*k=*/8, /*shards=*/2);
  const auto r4 = scenario::hybrid::tenant_isolation(/*k=*/8, /*shards=*/4);
  EXPECT_EQ(r1.fg_completed, r1.fg_sent);
  EXPECT_EQ(r1.bulk_completed, r1.bulk_count);
  EXPECT_EQ(r1.digest, r2.digest);
  EXPECT_EQ(r1.digest, r4.digest);
  EXPECT_EQ(r1.fg_completed, r2.fg_completed);
  EXPECT_EQ(r1.fg_completed, r4.fg_completed);
}

}  // namespace
}  // namespace mtp
