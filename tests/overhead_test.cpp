// Tests for the paper's §4 "discussion" mechanisms: DCQCN as an alternative
// ECN algorithm, strict-priority switch queues, and the two header-overhead
// reductions (ACK coalescing, selective feedback stamping).
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "innetwork/queues.hpp"
#include "mtp/cc_algorithm.hpp"
#include "mtp/endpoint.hpp"
#include "stats/stats.hpp"

namespace mtp::core {
namespace {

using namespace mtp::sim::literals;
using sim::Bandwidth;
using sim::SimTime;
using mtp::testing::HostPair;

// ------------------------------------------------------------------ dcqcn

TEST(DcqcnCc, RateDropsOnMarksRecoversWithout) {
  CcConfig cfg;
  DcqcnCc cc(cfg);
  // Ramp up mark-free.
  for (int i = 0; i < 3000; ++i) cc.on_ack(1000, 10_us);
  const double high = cc.rate_gbps();
  EXPECT_GT(high, 2.0);
  // Sustained marks: rate collapses, alpha rises.
  for (int i = 0; i < 3000; ++i) {
    cc.on_feedback({proto::FeedbackType::kEcn, 1}, 1000);
    cc.on_ack(1000, 10_us);
  }
  EXPECT_LT(cc.rate_gbps(), high / 2);
  EXPECT_GT(cc.alpha(), 0.3);
  // Marks stop: fast recovery + additive probing restore the rate.
  const double low = cc.rate_gbps();
  for (int i = 0; i < 5000; ++i) cc.on_ack(1000, 10_us);
  EXPECT_GT(cc.rate_gbps(), low * 2);
}

TEST(DcqcnCc, WindowIsRateTimesRtt) {
  CcConfig cfg;
  DcqcnCc cc(cfg);
  for (int i = 0; i < 100; ++i) cc.on_ack(1000, 20_us);
  const double expect = cc.rate_gbps() * 1e9 / 8.0 * 20e-6;
  EXPECT_NEAR(static_cast<double>(cc.window_bytes()), expect, expect * 0.2);
}

TEST(DcqcnCc, SelectedByFactoryWhenConfigured) {
  CcConfig cfg;
  cfg.ecn_algorithm = CcConfig::EcnAlgorithm::kDcqcn;
  EXPECT_EQ(make_cc(proto::FeedbackType::kEcn, cfg)->name(), "dcqcn");
  cfg.ecn_algorithm = CcConfig::EcnAlgorithm::kDctcp;
  EXPECT_EQ(make_cc(proto::FeedbackType::kEcn, cfg)->name(), "dctcp");
}

TEST(DcqcnCc, EndToEndTransferControlsQueue) {
  HostPair t(Bandwidth::gbps(10), 2_us, {.capacity_pkts = 256, .ecn_threshold_pkts = 40});
  t.a_to_sw->set_pathlet({.id = 1, .feedback = proto::FeedbackType::kEcn});
  MtpConfig cfg;
  cfg.cc.ecn_algorithm = CcConfig::EcnAlgorithm::kDcqcn;
  MtpEndpoint src(*t.a, cfg);
  MtpEndpoint dst(*t.b, cfg);
  std::int64_t got = 0;
  dst.listen(80, [&](const ReceivedMessage& m) { got += m.bytes; });
  src.send_message(t.b->id(), 5'000'000, {.dst_port = 80});
  std::size_t peak = 0;
  sim::PeriodicTask probe(t.sim(), 20_us, [&] {
    peak = std::max(peak, t.a_to_sw->queue().len_pkts());
  });
  probe.start(2_ms);
  t.sim().run(50_ms);
  EXPECT_EQ(got, 5'000'000);
  // Rate control oscillates (epoch-based decrease/recovery) but must keep
  // the queue from sitting at the drop cliff.
  EXPECT_LT(peak, 250u);
  EXPECT_LT(t.a_to_sw->queue().stats().dropped, 100u);
  const auto* cc = src.pathlet_cc(1, 0);
  ASSERT_NE(cc, nullptr);
  EXPECT_EQ(cc->name(), "dcqcn");
}

// -------------------------------------------------------- priority queue

TEST(StrictPriorityQueue, HighPriorityJumpsTheLine) {
  innetwork::StrictPriorityQueue q({.per_level_capacity_pkts = 64});
  auto mk = [](std::uint8_t pri) {
    net::Packet p;
    p.payload_bytes = 100;
    p.priority = pri;
    return p;
  };
  q.enqueue(mk(0));
  q.enqueue(mk(0));
  q.enqueue(mk(7));
  EXPECT_EQ(q.dequeue()->priority, 7);
  EXPECT_EQ(q.dequeue()->priority, 0);
  EXPECT_EQ(q.dequeue()->priority, 0);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(StrictPriorityQueue, FifoWithinLevelAndPerLevelDrops) {
  innetwork::StrictPriorityQueue q({.per_level_capacity_pkts = 2});
  auto mk = [](std::uint8_t pri, std::uint32_t bytes) {
    net::Packet p;
    p.payload_bytes = bytes;
    p.priority = pri;
    return p;
  };
  EXPECT_TRUE(q.enqueue(mk(3, 1)));
  EXPECT_TRUE(q.enqueue(mk(3, 2)));
  EXPECT_FALSE(q.enqueue(mk(3, 3)));  // level 3 full
  EXPECT_TRUE(q.enqueue(mk(1, 4)));   // level 1 unaffected
  EXPECT_EQ(q.dequeue()->payload_bytes, 1u);
  EXPECT_EQ(q.dequeue()->payload_bytes, 2u);
  EXPECT_EQ(q.dequeue()->payload_bytes, 4u);
}

TEST(StrictPriorityQueue, HighPriorityMessageCutsFctUnderCongestion) {
  // Bottleneck with a priority queue: a high-priority message sent after a
  // big low-priority one still finishes first end-to-end.
  net::Network net;
  auto* a = net.add_host("a");
  auto* b = net.add_host("b");
  auto* sw = net.add_switch("sw");
  net.connect(*a, *sw, Bandwidth::gbps(100), 1_us, {.capacity_pkts = 2048});
  net.connect_simplex(*sw, *b, Bandwidth::gbps(10), 1_us,
                      std::make_unique<innetwork::StrictPriorityQueue>(
                          innetwork::StrictPriorityQueue::Config{
                              .per_level_capacity_pkts = 1024}));
  net.connect_simplex(*b, *sw, Bandwidth::gbps(10), 1_us,
                      std::make_unique<net::DropTailQueue>());
  sw->add_route(a->id(), 0);
  sw->add_route(b->id(), 1);
  MtpEndpoint src(*a, {});
  MtpEndpoint dst(*b, {});
  std::vector<std::uint8_t> completion_order;
  dst.listen(80, [&](const ReceivedMessage& m) { completion_order.push_back(m.priority); });
  src.send_message(b->id(), 1'000'000, {.priority = 0, .dst_port = 80});
  net.simulator().run(50_us);
  src.send_message(b->id(), 100'000, {.priority = 9, .dst_port = 80});
  net.simulator().run(200_ms);
  ASSERT_EQ(completion_order.size(), 2u);
  EXPECT_EQ(completion_order[0], 9);
}

// -------------------------------------------------------- ack coalescing

TEST(AckCoalescing, FourToOneReductionAndIdenticalDelivery) {
  auto run_one = [](std::uint32_t coalesce) {
    HostPair t;
    MtpConfig cfg;
    cfg.ack_coalesce = coalesce;
    auto src = std::make_unique<MtpEndpoint>(*t.a, cfg);
    auto dst = std::make_unique<MtpEndpoint>(*t.b, cfg);
    std::int64_t got = 0;
    dst->listen(80, [&](const ReceivedMessage& m) { got += m.bytes; });
    src->send_message(t.b->id(), 1'000'000, {.dst_port = 80});
    t.sim().run(100_ms);
    return std::pair{got, dst->acks_sent()};
  };
  const auto [bytes1, acks1] = run_one(1);
  const auto [bytes8, acks8] = run_one(8);
  EXPECT_EQ(bytes1, 1'000'000);
  EXPECT_EQ(bytes8, 1'000'000);
  EXPECT_GT(acks1, 990u);              // per-packet acking
  EXPECT_LT(acks8, acks1 / 4);         // at least 4x fewer ACK packets
}

TEST(AckCoalescing, FlushTimerPreventsStall) {
  // A message smaller than the coalescing depth would never fill a batch;
  // the flush timer must still complete it promptly.
  HostPair t;
  MtpConfig cfg;
  cfg.ack_coalesce = 64;
  MtpEndpoint src(*t.a, cfg);
  MtpEndpoint dst(*t.b, cfg);
  bool done = false;
  SimTime fct;
  dst.listen(80, [](const ReceivedMessage&) {});
  src.send_message(t.b->id(), 3'000, {.dst_port = 80},
                   [&](proto::MsgId, SimTime d) {
                     done = true;
                     fct = d;
                   });
  t.sim().run(10_ms);
  EXPECT_TRUE(done);
  EXPECT_LT(fct.us(), 100.0);  // completion flush, not a retransmit timeout
}

TEST(AckCoalescing, LossRecoveryStillWorks) {
  HostPair t(Bandwidth::gbps(100), 1_us, {.capacity_pkts = 8});
  MtpConfig cfg;
  cfg.ack_coalesce = 8;
  MtpEndpoint src(*t.a, cfg);
  MtpEndpoint dst(*t.b, cfg);
  std::int64_t got = 0;
  dst.listen(80, [&](const ReceivedMessage& m) { got += m.bytes; });
  src.send_message(t.b->id(), 400'000, {.dst_port = 80});
  t.sim().run(200_ms);
  EXPECT_EQ(got, 400'000);
}

// ---------------------------------------------------- selective feedback

TEST(SelectiveFeedback, UncongestedPathStampsOnlyEveryNth) {
  HostPair t;
  t.a_to_sw->set_pathlet(
      {.id = 3, .feedback = proto::FeedbackType::kEcn, .selective_every = 10});
  MtpEndpoint src(*t.a, {});
  MtpEndpoint dst(*t.b, {});
  std::int64_t stamped = 0, total = 0;
  // Sniff at the receiving host.
  auto inner = std::make_shared<int>();
  (void)inner;
  dst.listen(80, [](const ReceivedMessage&) {});
  // Count via a switch-side sniffer.
  class Sniffer : public net::IngressProcessor {
   public:
    Sniffer(std::int64_t& s, std::int64_t& t) : s_(s), t_(t) {}
    bool process(net::Packet& pkt, net::Switch&) override {
      if (pkt.is_mtp() && !pkt.mtp().is_ack()) {
        ++t_;
        if (!pkt.mtp().path_feedback().empty()) ++s_;
      }
      return false;
    }
    std::int64_t& s_;
    std::int64_t& t_;
  };
  t.sw->add_ingress(std::make_shared<Sniffer>(stamped, total));
  src.send_message(t.b->id(), 500'000, {.dst_port = 80});
  t.sim().run(100_ms);
  EXPECT_GT(total, 490);
  // Lightly loaded path (no marks): ~1 in 10 packets carries feedback.
  EXPECT_LT(stamped, total / 5);
  EXPECT_GT(stamped, total / 20);
}

TEST(SelectiveFeedback, CongestionAlwaysStamps) {
  // Saturating transfer with a tight marking threshold: marked packets must
  // carry feedback even off the Nth-packet schedule, so control stays tight.
  HostPair t(Bandwidth::gbps(10), 2_us, {.capacity_pkts = 256, .ecn_threshold_pkts = 10});
  t.a_to_sw->set_pathlet(
      {.id = 3, .feedback = proto::FeedbackType::kEcn, .selective_every = 50});
  MtpEndpoint src(*t.a, {});
  MtpEndpoint dst(*t.b, {});
  std::int64_t got = 0;
  dst.listen(80, [&](const ReceivedMessage& m) { got += m.bytes; });
  src.send_message(t.b->id(), 5'000'000, {.dst_port = 80});
  std::size_t peak = 0;
  sim::PeriodicTask probe(t.sim(), 20_us, [&] {
    peak = std::max(peak, t.a_to_sw->queue().len_pkts());
  });
  probe.start(2_ms);
  t.sim().run(100_ms);
  EXPECT_EQ(got, 5'000'000);
  EXPECT_LT(peak, 120u);  // congestion feedback got through despite selectivity
}

}  // namespace
}  // namespace mtp::core
