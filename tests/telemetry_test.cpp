// mtp::telemetry tests: registry lifecycle and lookup, trace ring semantics,
// filters, JSONL round-trip, end-to-end event ordering on a real transfer,
// and run-report rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>

#include "mtp/endpoint.hpp"
#include "net/network.hpp"
#include "stats/stats.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"

namespace mtp::telemetry {
namespace {

using namespace mtp::sim::literals;

/// Every test starts from a clean, disabled sink and leaves it that way —
/// the sink is process-global state shared with every other test.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceSink::set_enabled(false);
    trace().set_capacity(1 << 16);  // also clears
    trace().clear_filters();
  }
  void TearDown() override {
    TraceSink::set_enabled(false);
    trace().set_capacity(1 << 16);
    trace().clear_filters();
  }
};

TraceEvent make_event(std::uint64_t msg_id, TraceEventType type = TraceEventType::kTx) {
  TraceEvent ev;
  ev.t = sim::SimTime::nanoseconds(static_cast<std::int64_t>(msg_id));
  ev.type = type;
  ev.component = "test";
  ev.msg_id = msg_id;
  return ev;
}

// ---------------------------------------------------------------- registry

TEST_F(TelemetryTest, RegistryProviderAppearsInSnapshotAndDeregistersOnDrop) {
  auto& reg = MetricRegistry::global();
  const std::size_t before = reg.provider_count();
  double live = 7;
  {
    Registration r = reg.add("widget", "w0", [&](std::vector<MetricSample>& out) {
      out.push_back({"spins", MetricKind::kCounter, live});
    });
    EXPECT_EQ(reg.provider_count(), before + 1);

    RegistrySnapshot snap = reg.snapshot();
    ASSERT_TRUE(snap.value("widget", "w0", "spins").has_value());
    EXPECT_EQ(*snap.value("widget", "w0", "spins"), 7);

    // Snapshots sample live state: the provider is re-polled each time.
    live = 8;
    EXPECT_EQ(*reg.snapshot().value("widget", "w0", "spins"), 8);
  }
  EXPECT_EQ(reg.provider_count(), before);
  EXPECT_FALSE(reg.snapshot().value("widget", "w0", "spins").has_value());
}

TEST_F(TelemetryTest, RegistrationIsMovable) {
  auto& reg = MetricRegistry::global();
  const std::size_t before = reg.provider_count();
  Registration outer;
  {
    Registration inner = reg.add("widget", "w1", [](std::vector<MetricSample>& out) {
      out.push_back({"x", MetricKind::kGauge, 1});
    });
    outer = std::move(inner);
    EXPECT_FALSE(inner.active());  // NOLINT(bugprone-use-after-move)
  }
  // The provider survived its original handle's scope via the move.
  EXPECT_EQ(reg.provider_count(), before + 1);
  EXPECT_TRUE(outer.active());
  outer.reset();
  EXPECT_EQ(reg.provider_count(), before);
}

TEST_F(TelemetryTest, SnapshotTotalSumsAcrossInstances) {
  auto& reg = MetricRegistry::global();
  auto mk = [&](const char* inst, double v) {
    return reg.add("widget", inst, [v](std::vector<MetricSample>& out) {
      out.push_back({"spins", MetricKind::kCounter, v});
    });
  };
  Registration a = mk("a", 3), b = mk("b", 4);
  EXPECT_EQ(reg.snapshot().total("widget", "spins"), 7);
  EXPECT_EQ(reg.snapshot().total("widget", "absent"), 0);
}

TEST_F(TelemetryTest, SnapshotJsonEscapesAndRenders) {
  auto& reg = MetricRegistry::global();
  Registration r = reg.add("widget", "quo\"te", [](std::vector<MetricSample>& out) {
    out.push_back({"spins", MetricKind::kCounter, 42});
  });
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"quo\\\"te\""), std::string::npos);
  EXPECT_NE(json.find("\"spins\":42"), std::string::npos);
}

// ------------------------------------------------------------------- sink

TEST_F(TelemetryTest, EnabledFlagGatesInstrumentation) {
  // The flag is the contract every hook checks before building an event;
  // with it off, an instrumented simulation records nothing.
  EXPECT_FALSE(TraceSink::enabled());

  net::Network net;
  net::Host* a = net.add_host("a");
  net::Host* b = net.add_host("b");
  net.connect(*a, *b, sim::Bandwidth::gbps(10), 1_us, {.capacity_pkts = 16});
  core::MtpEndpoint tx(*a, {});
  core::MtpEndpoint rx(*b, {});
  rx.listen(80, [](const core::ReceivedMessage&) {});
  tx.send_message(b->id(), 5'000, {.dst_port = 80});
  net.simulator().run();

  EXPECT_GT(tx.pkts_sent(), 0u);
  EXPECT_EQ(trace().size(), 0u);
  EXPECT_EQ(trace().recorded(), 0u);
}

TEST_F(TelemetryTest, RingBoundsMemoryAndOverwritesOldest) {
  TraceSink::set_enabled(true);
  trace().set_capacity(8);
  for (std::uint64_t i = 0; i < 20; ++i) trace().record(make_event(i));
  EXPECT_EQ(trace().size(), 8u);
  EXPECT_EQ(trace().capacity(), 8u);
  EXPECT_EQ(trace().recorded(), 20u);

  const auto events = trace().events();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].msg_id, 12 + i) << "oldest-first order after wrap";
  }
}

TEST_F(TelemetryTest, FiltersSuppressNonMatchingEvents) {
  TraceSink::set_enabled(true);
  trace().filter_message(5);
  trace().record(make_event(5));
  trace().record(make_event(6));
  EXPECT_EQ(trace().size(), 1u);
  EXPECT_EQ(trace().suppressed(), 1u);
  EXPECT_EQ(trace().events().front().msg_id, 5u);

  trace().clear_filters();
  trace().record(make_event(6));
  EXPECT_EQ(trace().size(), 2u);
}

TEST_F(TelemetryTest, NodeFilterMatchesEitherEndpoint) {
  TraceSink::set_enabled(true);
  trace().filter_node(9);
  TraceEvent from = make_event(1);
  from.src = 9;
  TraceEvent to = make_event(2);
  to.dst = 9;
  TraceEvent neither = make_event(3);
  trace().record(from);
  trace().record(to);
  trace().record(neither);
  EXPECT_EQ(trace().size(), 2u);
  EXPECT_EQ(trace().suppressed(), 1u);
}

TEST_F(TelemetryTest, CountByType) {
  TraceSink::set_enabled(true);
  trace().record(make_event(1, TraceEventType::kTx));
  trace().record(make_event(2, TraceEventType::kTx));
  trace().record(make_event(3, TraceEventType::kDrop));
  EXPECT_EQ(trace().count(TraceEventType::kTx), 2u);
  EXPECT_EQ(trace().count(TraceEventType::kDrop), 1u);
  EXPECT_EQ(trace().count(TraceEventType::kRto), 0u);
}

TEST_F(TelemetryTest, EventTypeNamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(TraceEventType::kPathletFeedback); ++i) {
    const auto type = static_cast<TraceEventType>(i);
    const auto back = trace_event_type_from_string(to_string(type));
    ASSERT_TRUE(back.has_value()) << to_string(type);
    EXPECT_EQ(*back, type);
  }
  EXPECT_FALSE(trace_event_type_from_string("bogus").has_value());
}

TEST_F(TelemetryTest, JsonlRoundTrips) {
  TraceSink::set_enabled(true);
  TraceEvent ev;
  ev.t = 1500_ns;
  ev.type = TraceEventType::kEcnMark;
  ev.component = "sw->rcv";
  ev.src = 3;
  ev.dst = 4;
  ev.msg_id = 77;
  ev.pkt_num = 12;
  ev.bytes = 1064;
  ev.tc = 2;
  ev.flow = 0xdeadbeefcafeULL;
  ev.pathlet = 9;
  ev.value = 123;
  trace().record(ev);
  trace().record(make_event(78, TraceEventType::kAck));

  const std::string jsonl = trace().to_jsonl();
  const auto parsed = TraceSink::parse_jsonl(jsonl);
  ASSERT_EQ(parsed.size(), 2u);
  const TraceEvent& p = parsed.front();
  EXPECT_EQ(p.t, ev.t);
  EXPECT_EQ(p.type, ev.type);
  EXPECT_EQ(p.component, ev.component);
  EXPECT_EQ(p.src, ev.src);
  EXPECT_EQ(p.dst, ev.dst);
  EXPECT_EQ(p.msg_id, ev.msg_id);
  EXPECT_EQ(p.pkt_num, ev.pkt_num);
  EXPECT_EQ(p.bytes, ev.bytes);
  EXPECT_EQ(p.tc, ev.tc);
  EXPECT_EQ(p.flow, ev.flow);
  EXPECT_EQ(p.pathlet, ev.pathlet);
  EXPECT_EQ(p.value, ev.value);
}

TEST_F(TelemetryTest, ParseJsonlSkipsGarbageLines) {
  const auto parsed = TraceSink::parse_jsonl(
      "not json\n"
      "{\"t_ns\":5,\"type\":\"tx\",\"component\":\"l\",\"src\":1,\"dst\":2,"
      "\"msg_id\":3,\"pkt_num\":4,\"bytes\":5,\"tc\":6,\"flow\":7,\"pathlet\":8,"
      "\"value\":9}\n"
      "{\"type\":\"unknowntype\",\"t_ns\":1}\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.front().msg_id, 3u);
}

// ----------------------------------------------------- end-to-end transfer

TEST_F(TelemetryTest, TwoHostTransferProducesOrderedEvents) {
  TraceSink::set_enabled(true);

  net::Network net;
  net::Host* alice = net.add_host("alice");
  net::Host* bob = net.add_host("bob");
  net::Switch* sw = net.add_switch("tor");
  net.connect(*alice, *sw, sim::Bandwidth::gbps(100), 1_us, {.capacity_pkts = 128});
  net.connect(*sw, *bob, sim::Bandwidth::gbps(100), 1_us, {.capacity_pkts = 128});
  sw->add_route(alice->id(), 0);
  sw->add_route(bob->id(), 1);

  core::MtpEndpoint tx(*alice, {});
  core::MtpEndpoint rx(*bob, {});
  rx.listen(80, [](const core::ReceivedMessage&) {});
  const proto::MsgId msg = tx.send_message(bob->id(), 50'000, {.dst_port = 80});
  net.simulator().run();

  const std::uint32_t total_pkts = 50;  // 50'000 bytes / 1000 MSS
  ASSERT_EQ(tx.pkts_sent(), total_pkts);
  ASSERT_EQ(tx.pkts_retransmitted(), 0u);

  // Per-(link, packet) lifecycle: every data packet on the first hop was
  // enqueued, dequeued, serialized and delivered, in that time order.
  std::map<std::uint32_t, std::map<TraceEventType, sim::SimTime>> uplink;
  for (const auto& ev : trace().events()) {
    if (ev.component == "alice->tor" && ev.msg_id == msg) {
      uplink[ev.pkt_num][ev.type] = ev.t;
    }
  }
  ASSERT_EQ(uplink.size(), total_pkts);
  for (const auto& [pkt, stages] : uplink) {
    ASSERT_TRUE(stages.contains(TraceEventType::kEnqueue)) << "pkt " << pkt;
    ASSERT_TRUE(stages.contains(TraceEventType::kDequeue)) << "pkt " << pkt;
    ASSERT_TRUE(stages.contains(TraceEventType::kTx)) << "pkt " << pkt;
    ASSERT_TRUE(stages.contains(TraceEventType::kRx)) << "pkt " << pkt;
    EXPECT_LE(stages.at(TraceEventType::kEnqueue), stages.at(TraceEventType::kDequeue));
    EXPECT_LE(stages.at(TraceEventType::kDequeue), stages.at(TraceEventType::kTx));
    EXPECT_LE(stages.at(TraceEventType::kTx), stages.at(TraceEventType::kRx));
  }

  // ACK events come from the receiving endpoint and match its counter.
  EXPECT_EQ(trace().count(TraceEventType::kAck), rx.acks_sent());
  EXPECT_GT(rx.acks_sent(), 0u);
  // Clean run: no drops, losses or NACKs.
  EXPECT_EQ(trace().count(TraceEventType::kDrop), 0u);
  EXPECT_EQ(trace().count(TraceEventType::kRto), 0u);
  EXPECT_EQ(trace().count(TraceEventType::kNack), 0u);

  // The registry agrees with the component accessors while the rig is alive.
  const RegistrySnapshot snap = MetricRegistry::global().snapshot();
  EXPECT_EQ(*snap.value("mtp", "alice", "pkts_sent"), static_cast<double>(tx.pkts_sent()));
  EXPECT_EQ(*snap.value("mtp", "bob", "acks_sent"), static_cast<double>(rx.acks_sent()));
  EXPECT_EQ(*snap.value("mtp", "bob", "msgs_delivered"), 1.0);
  EXPECT_GE(*snap.value("link", "alice->tor", "pkts_delivered"),
            static_cast<double>(total_pkts));
  EXPECT_EQ(*snap.value("queue", "alice->tor", "dropped"), 0.0);
  EXPECT_EQ(*snap.value("host", "bob", "unhandled_packets"), 0.0);
  EXPECT_EQ(*snap.value("switch", "tor", "no_route_drops"), 0.0);
}

// ----------------------------------------------------------------- report

TEST_F(TelemetryTest, RunReportRendersSectionsScalarsAndRegistry) {
  auto& reg = MetricRegistry::global();
  Registration r = reg.add("widget", "w0", [](std::vector<MetricSample>& out) {
    out.push_back({"spins", MetricKind::kCounter, 11});
  });

  stats::FctRecorder fct;
  fct.record(10_us, 1'000);    // short
  fct.record(20_us, 1'000);    // short
  fct.record(500_us, 900'000); // long

  RunReport report("unit_test");
  auto& sec = report.section("scheme_a");
  sec.add_scalar("goodput_gbps", 87.5);
  sec.add_text("note", "hello \"world\"");
  sec.add_fct("fct", fct, /*split_bytes=*/100'000);
  sec.set_registry(reg.snapshot());
  report.section("scheme_b").add_scalar("goodput_gbps", 42.0);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"experiment\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"schema\": \"mtp.telemetry.run_report/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"scheme_a\""), std::string::npos);
  EXPECT_NE(json.find("\"scheme_b\""), std::string::npos);
  EXPECT_NE(json.find("\"goodput_gbps\":87.5"), std::string::npos);
  EXPECT_NE(json.find("hello \\\"world\\\""), std::string::npos);
  EXPECT_NE(json.find("\"spins\":11"), std::string::npos);
  // FCT summary with the short/long split present.
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"short\""), std::string::npos);
  EXPECT_NE(json.find("\"long\""), std::string::npos);

  // Section lookup is get-or-create: the same name returns the same section.
  report.section("scheme_a").add_scalar("extra", 1.0);
  EXPECT_NE(report.to_json().find("\"extra\":1"), std::string::npos);
}

TEST_F(TelemetryTest, RunReportWritesFile) {
  RunReport report("file_test");
  report.section("only").add_scalar("x", 3.0);
  const std::string path = ::testing::TempDir() + "telemetry_file_test.json";
  ASSERT_TRUE(report.write_file(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  EXPECT_NE(std::string(buf).find("\"file_test\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mtp::telemetry
