// Tests for the RPC layer over MTP: request/response correlation, timeouts,
// concurrency, interposition-friendliness (L7 LB spreading calls), and
// priority propagation.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "innetwork/l7_lb.hpp"
#include "mtp/rpc.hpp"

namespace mtp::core {
namespace {

using namespace mtp::sim::literals;
using mtp::testing::HostPair;
using sim::Bandwidth;
using sim::SimTime;

struct RpcRig {
  HostPair t;
  MtpEndpoint client_ep;
  MtpEndpoint server_ep;
  RpcClient client;
  RpcServer server;

  RpcRig()
      : t(),
        client_ep(*t.a, {}),
        server_ep(*t.b, {}),
        client(client_ep, {.reply_port = 9000}),
        server(server_ep, 80) {}
};

TEST(Rpc, CallRoundTripsWithBody) {
  RpcRig r;
  r.server.handle("echo", [](const std::string&, std::int64_t req_bytes, net::NodeId) {
    return RpcServer::Response{req_bytes * 2, "pong"};
  });
  std::optional<RpcReply> reply;
  r.client.call(r.t.b->id(), 80, "echo", 1'000,
                [&](const RpcReply& rep) { reply = rep; });
  r.t.sim().run(10_ms);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->ok);
  EXPECT_EQ(reply->bytes, 2'000);
  EXPECT_EQ(reply->body, "pong");
  EXPECT_EQ(reply->responder, r.t.b->id());
  EXPECT_LT(reply->latency.us(), 50.0);
  EXPECT_EQ(r.server.requests_served(), 1u);
  EXPECT_EQ(r.client.inflight(), 0u);
}

TEST(Rpc, ConcurrentCallsCorrelateIndependently) {
  RpcRig r;
  r.server.handle("", [](const std::string& method, std::int64_t, net::NodeId) {
    // Response size encodes the method so the client can verify pairing.
    return RpcServer::Response{static_cast<std::int64_t>(method.size()) * 1'000,
                               method};
  });
  int done = 0;
  for (int i = 0; i < 20; ++i) {
    const std::string method(static_cast<std::size_t>(1 + i % 5), 'm');
    r.client.call(r.t.b->id(), 80, method, 500, [&, method](const RpcReply& rep) {
      EXPECT_TRUE(rep.ok);
      EXPECT_EQ(rep.body, method);
      EXPECT_EQ(rep.bytes, static_cast<std::int64_t>(method.size()) * 1'000);
      ++done;
    });
  }
  r.t.sim().run(50_ms);
  EXPECT_EQ(done, 20);
  EXPECT_EQ(r.client.completed(), 20u);
}

TEST(Rpc, UnknownMethodTimesOut) {
  RpcRig r;  // no handlers registered at all
  std::optional<RpcReply> reply;
  r.client.call(r.t.b->id(), 80, "nope", 100,
                [&](const RpcReply& rep) { reply = rep; });
  r.t.sim().run(50_ms);
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(reply->ok);
  EXPECT_EQ(r.client.timed_out(), 1u);
  EXPECT_EQ(r.client.inflight(), 0u);
}

TEST(Rpc, UnreachableServerTimesOut) {
  RpcRig r;
  bool failed = false;
  r.client.call(777 /* no route */, 80, "x", 100,
                [&](const RpcReply& rep) { failed = !rep.ok; });
  r.t.sim().run(50_ms);
  EXPECT_TRUE(failed);
}

TEST(Rpc, LargeRequestAndResponseBodies) {
  RpcRig r;
  r.server.handle("put", [](const std::string&, std::int64_t, net::NodeId) {
    return RpcServer::Response{2'000'000, "stored"};
  });
  std::optional<RpcReply> reply;
  RpcClient big_client(r.client_ep, {.reply_port = 9100, .timeout = 100_ms});
  big_client.call(r.t.b->id(), 80, "put", 1'000'000,
                  [&](const RpcReply& rep) { reply = rep; });
  r.t.sim().run(200_ms);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->ok);
  EXPECT_EQ(reply->bytes, 2'000'000);
}

TEST(Rpc, CallsSpreadAcrossReplicasThroughL7Lb) {
  // Inter-message independence through the RPC layer: a client calling a
  // virtual service gets answers from whichever replica the balancer chose.
  net::Network net;
  auto* client_host = net.add_host("client");
  auto* sw = net.add_switch("lb");
  auto* r1 = net.add_host("r1");
  auto* r2 = net.add_host("r2");
  net.connect(*client_host, *sw, Bandwidth::gbps(100), 1_us);
  net.connect(*sw, *r1, Bandwidth::gbps(100), 1_us);
  net.connect(*sw, *r2, Bandwidth::gbps(100), 1_us);
  sw->add_route(client_host->id(), 0);
  sw->add_route(r1->id(), 1);
  sw->add_route(r2->id(), 2);
  const net::NodeId service = 500;
  sw->add_ingress(std::make_shared<innetwork::L7LoadBalancer>(
      innetwork::L7LoadBalancer::Config{.virtual_service = service,
                                        .replicas = {r1->id(), r2->id()}}));

  MtpEndpoint ce(*client_host, {});
  MtpEndpoint e1(*r1, {});
  MtpEndpoint e2(*r2, {});
  RpcClient client(ce, {.reply_port = 9000});
  RpcServer s1(e1, 80);
  RpcServer s2(e2, 80);
  auto handler = [](const std::string&, std::int64_t, net::NodeId) {
    return RpcServer::Response{100, "ok"};
  };
  s1.handle("", handler);
  s2.handle("", handler);

  std::set<net::NodeId> responders;
  int ok = 0;
  for (int i = 0; i < 16; ++i) {
    client.call(service, 80, "get", 200, [&](const RpcReply& rep) {
      if (rep.ok) {
        ++ok;
        responders.insert(rep.responder);
      }
    });
  }
  net.simulator().run(50_ms);
  EXPECT_EQ(ok, 16);
  EXPECT_EQ(responders.size(), 2u);  // both replicas answered someone
}

TEST(Rpc, HighPriorityCallOvertakesUnderBacklog) {
  HostPair t(Bandwidth::gbps(1), 2_us);
  MtpEndpoint ce(*t.a, {});
  MtpEndpoint se(*t.b, {});
  RpcClient client(ce, {.reply_port = 9000, .timeout = 500_ms});
  RpcServer server(se, 80);
  server.handle("", [](const std::string&, std::int64_t, net::NodeId) {
    return RpcServer::Response{100, ""};
  });
  std::vector<int> completion_order;
  // Two bulky low-priority calls, then one small high-priority call.
  for (int i = 0; i < 2; ++i) {
    client.call(t.b->id(), 80, "bulk", 400'000,
                [&](const RpcReply&) { completion_order.push_back(0); });
  }
  t.sim().run(100_us);
  client.call(t.b->id(), 80, "urgent", 1'000,
              [&](const RpcReply&) { completion_order.push_back(9); }, 9);
  t.sim().run(500_ms);
  ASSERT_EQ(completion_order.size(), 3u);
  EXPECT_EQ(completion_order[0], 9);
}

}  // namespace
}  // namespace mtp::core
