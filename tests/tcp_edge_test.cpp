// TCP edge cases: peers that vanish, zero-window stalls resolved by probes,
// bidirectional transfers, and ECN codepoint discipline.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "transport/apps.hpp"
#include "transport/tcp.hpp"

namespace mtp::transport {
namespace {

using namespace mtp::sim::literals;
using mtp::testing::HostPair;
using sim::Bandwidth;
using sim::SimTime;

TEST(TcpEdge, SenderAbortsWhenPeerVanishesMidTransfer) {
  HostPair t;
  TcpStack ca(*t.a, {});
  TcpStack cb(*t.b, {});
  TcpSink sink(cb, 80);
  auto client = ca.connect(t.b->id(), 80);
  bool closed = false;
  client->on_established = [&] { client->send(10'000'000); };
  client->on_closed = [&] { closed = true; };
  t.sim().run(500_us);  // transfer under way
  EXPECT_GT(client->bytes_delivered(), 0);
  t.sw_to_b->set_up(false);  // the server becomes unreachable
  t.sim().run(5'000_ms);
  // Exponential backoff runs out; the connection aborts instead of retrying
  // forever (and the stack forgets it).
  EXPECT_TRUE(closed);
  EXPECT_EQ(client->state(), TcpConnection::State::kClosed);
  EXPECT_EQ(ca.open_connections(), 0u);
}

TEST(TcpEdge, ZeroWindowProbeResumesAfterLongStall) {
  HostPair t;
  TcpConfig server_cfg;
  server_cfg.rcv_buf_bytes = 4'000;
  TcpStack ca(*t.a, {});
  TcpStack cb(*t.b, server_cfg);
  std::shared_ptr<TcpConnection> server;
  cb.listen(80, [&](std::shared_ptr<TcpConnection> c) {
    server = std::move(c);
    server->set_auto_consume(false);
  });
  auto client = ca.connect(t.b->id(), 80);
  client->on_established = [&] {
    client->send(20'000);
    client->close();
  };
  // Fill the 4KB receive buffer, then stall for a long time.
  t.sim().run(5_ms);
  ASSERT_NE(server, nullptr);
  // ~4KB buffered, plus a handful of accepted 1-byte zero-window probes.
  EXPECT_GE(server->available(), 4'000);
  EXPECT_LT(server->available(), 4'200);
  t.sim().run(50_ms);  // stalled on zero window, probes keep the conn alive
  ASSERT_NE(client->state(), TcpConnection::State::kClosed);
  // Drain; the transfer must finish.
  sim::PeriodicTask drain(t.sim(), 50_us, [&] {
    if (server->available() > 0) server->consume(server->available());
  });
  drain.start();
  t.sim().run(500_ms);
  EXPECT_EQ(client->bytes_delivered(), 20'000);
}

TEST(TcpEdge, SimultaneousBidirectionalTransfers) {
  HostPair t;
  TcpStack ca(*t.a, {});
  TcpStack cb(*t.b, {});
  TcpSink sink_b(cb, 80);
  TcpSink sink_a(ca, 81);
  auto ab = ca.connect(t.b->id(), 80);
  auto ba = cb.connect(t.a->id(), 81);
  ab->on_established = [&] {
    ab->send(300'000);
    ab->close();
  };
  ba->on_established = [&] {
    ba->send(500'000);
    ba->close();
  };
  t.sim().run(100_ms);
  EXPECT_EQ(sink_b.bytes_received(), 300'000);
  EXPECT_EQ(sink_a.bytes_received(), 500'000);
}

TEST(TcpEdge, ControlPacketsAreNotEcnCapable) {
  // SYN/pure-ACK packets must carry Not-ECT even on a DCTCP stack
  // (RFC 3168 discipline); data segments carry ECT.
  HostPair t;
  TcpConfig cfg;
  cfg.dctcp = true;
  TcpStack ca(*t.a, cfg);
  TcpStack cb(*t.b, cfg);
  bool saw_syn_ect = false, saw_data_ect = false;
  class Sniffer : public net::IngressProcessor {
   public:
    Sniffer(bool& syn_ect, bool& data_ect) : syn_ect_(syn_ect), data_ect_(data_ect) {}
    bool process(net::Packet& pkt, net::Switch&) override {
      if (!pkt.is_tcp()) return false;
      const auto& h = pkt.tcp();
      if (h.has(proto::kTcpSyn) && pkt.ecn != net::Ecn::kNotEct) syn_ect_ = true;
      if (h.payload > 0 && pkt.ecn == net::Ecn::kEct) data_ect_ = true;
      return false;
    }
    bool& syn_ect_;
    bool& data_ect_;
  };
  t.sw->add_ingress(std::make_shared<Sniffer>(saw_syn_ect, saw_data_ect));
  TcpSink sink(cb, 80);
  auto client = ca.connect(t.b->id(), 80);
  client->on_established = [&] {
    client->send(50'000);
    client->close();
  };
  t.sim().run(50_ms);
  EXPECT_FALSE(saw_syn_ect);
  EXPECT_TRUE(saw_data_ect);
  EXPECT_EQ(sink.bytes_received(), 50'000);
}

TEST(TcpEdge, ManySequentialConnectionsDoNotLeakState) {
  HostPair t;
  TcpStack ca(*t.a, {});
  TcpStack cb(*t.b, {});
  TcpSink sink(cb, 80);
  TcpPerMessageClient client(ca, t.b->id(), 80);
  int remaining = 50;
  std::function<void()> next = [&] {
    if (remaining-- <= 0) return;
    client.send_message(10'000, [&](SimTime, std::int64_t) { next(); });
  };
  next();
  t.sim().run(2'000_ms);
  EXPECT_EQ(client.completed(), 50u);
  EXPECT_EQ(sink.bytes_received(), 50 * 10'000);
  EXPECT_EQ(ca.open_connections(), 0u);
  EXPECT_EQ(cb.open_connections(), 0u);
}

}  // namespace
}  // namespace mtp::transport
