// Tests for the mtp::scenario library: the fluent builder must assemble the
// same rigs the benches used to hand-roll, and the transport::Transport
// fleets it builds from the registry must behave identically across
// transports (the per-name contract lives in transport_conformance_test).
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace mtp::scenario {
namespace {

workload::ArrivalSchedule small_schedule(int per_sender, int senders) {
  workload::ArrivalSchedule sched;
  sim::SimTime t = 1_us;
  for (int m = 0; m < per_sender; ++m) {
    for (int s = 0; s < senders; ++s) {
      sched.add(t, static_cast<std::uint32_t>(s), 20'000);
      t += 2_us;
    }
  }
  return sched;
}

TEST(ScenarioBuilder, MtpWorkloadRecordsAllCompletions) {
  auto s = ScenarioBuilder()
               .seed(3)
               .topology(topo::dual_path(2))
               .forwarding(Forwarding::kMessageAware)
               .transport("mtp")
               .workload(small_schedule(10, 2))
               .build();
  ASSERT_EQ(s->num_senders(), 2u);
  EXPECT_EQ(s->sender(0).name(), "mtp");
  s->run();
  EXPECT_EQ(s->fct().count(), 20u);
  EXPECT_EQ(s->replayed(), 20u);
  EXPECT_GT(s->fct().p50_us(), 0.0);
  EXPECT_EQ(s->sender(0).completed() + s->sender(1).completed(), 20u);
}

TEST(ScenarioBuilder, TcpWorkloadRecordsAllCompletions) {
  auto s = ScenarioBuilder()
               .seed(3)
               .topology(topo::dual_path(2))
               .forwarding(Forwarding::kEcmp)
               .transport("tcp")
               .workload(small_schedule(5, 2))
               .build();
  EXPECT_EQ(s->sender(0).name(), "tcp");
  EXPECT_EQ(s->mtp_sender(0), nullptr);
  ASSERT_NE(s->tcp_sender(0), nullptr);
  s->run();
  EXPECT_EQ(s->fct().count(), 10u);
}

TEST(ScenarioBuilder, DctcpTransportIsTcpStackWithDctcpEnabled) {
  auto s = ScenarioBuilder()
               .seed(3)
               .topology(topo::dual_path(1))
               .transport("dctcp")
               .build();
  EXPECT_EQ(s->sender(0).name(), "dctcp");
  EXPECT_TRUE(s->tcp_sender(0)->config().dctcp);
}

TEST(ScenarioBuilder, BulkTransferFeedsGoodputMeter) {
  auto s = ScenarioBuilder()
               .seed(3)
               .topology(topo::two_path_flip())
               .forwarding(Forwarding::kAlternating, 200_us)
               .transport("mtp")
               .bulk()
               .goodput_window(50_us)
               .build();
  ASSERT_NE(s->goodput(), nullptr);
  s->run(1_ms);
  EXPECT_GT(s->goodput()->total_bytes(), 0);
  EXPECT_FALSE(s->goodput()->series().empty());
}

TEST(ScenarioBuilder, FlapTakesFaultLinkDownAndRestoresIt) {
  auto s = ScenarioBuilder()
               .seed(42)
               .topology(topo::dual_hop_fabric())
               .forwarding(Forwarding::kMessageAware)
               .transport("mtp")
               .flap(0, 100_us, 200_us)
               .build();
  ASSERT_FALSE(s->topo().fault_links.empty());
  net::Link* target = s->topo().fault_links[0];
  EXPECT_TRUE(target->is_up());
  s->run(150_us);
  EXPECT_FALSE(target->is_up());
  s->run(1_ms);
  EXPECT_TRUE(target->is_up());
}

TEST(ScenarioBuilder, SenderTcsReachTheWire) {
  // Two senders on distinct TCs through a shared bottleneck; both complete.
  auto s = ScenarioBuilder()
               .seed(7)
               .topology(topo::shared_bottleneck())
               .transport("mtp")
               .sender_tcs({1, 2})
               .workload(small_schedule(4, 2))
               .build();
  s->run();
  EXPECT_EQ(s->fct().count(), 8u);
}

TEST(ScenarioTopo, IncastFansIntoOneReceiver) {
  auto s = ScenarioBuilder()
               .seed(5)
               .topology(topo::incast(8))
               .transport("mtp")
               .workload(small_schedule(2, 8))
               .build();
  ASSERT_EQ(s->num_senders(), 8u);
  s->run();
  EXPECT_EQ(s->fct().count(), 16u);
}

TEST(ScenarioTopo, FatTreePeerToPeerModeDrivesEndpointsDirectly) {
  auto s = ScenarioBuilder()
               .seed(11)
               .topology(topo::fat_tree({.k = 4}))
               .forwarding(Forwarding::kMessageAware)
               .transport("mtp")
               .build();
  ASSERT_EQ(s->num_senders(), 16u);
  EXPECT_EQ(s->topo().receiver, nullptr);
  int done = 0;
  // Any-to-any: host h sends to host (h+3) % 16; every endpoint listens.
  for (std::size_t h = 0; h < s->num_senders(); ++h) {
    ASSERT_NE(s->mtp_sender(h), nullptr);
    const auto dst = s->topo().senders[(h + 3) % s->num_senders()]->id();
    s->mtp_sender(h)->send_message(dst, 30'000, {.dst_port = 80},
                                   [&done](proto::MsgId, sim::SimTime) { ++done; });
  }
  s->run();
  EXPECT_EQ(done, 16);
}

TEST(ScenarioTopo, TwoPathFlipExposesFastAndSlowPaths) {
  auto s = ScenarioBuilder()
               .seed(1)
               .topology(topo::two_path_flip())
               .transport("mtp")
               .build();
  ASSERT_EQ(s->topo().paths.size(), 2u);
  EXPECT_GT(s->topo().paths[0]->bandwidth().gbit_per_sec(),
            s->topo().paths[1]->bandwidth().gbit_per_sec());
}

TEST(ScenarioBuilder, DeterministicAcrossRebuilds) {
  auto run_once = [] {
    auto s = ScenarioBuilder()
                 .seed(9)
                 .topology(topo::dual_path(2))
                 .forwarding(Forwarding::kSpray)
                 .transport("mtp")
                 .workload(small_schedule(8, 2))
                 .build();
    s->run();
    return std::make_pair(s->fct().p99_us(), s->simulator().now().ns());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mtp::scenario
