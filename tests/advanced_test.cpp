// Advanced-feature tests: in-network gradient aggregation (ATP-style),
// link-failure injection and failure-aware forwarding, flowlet switching,
// the leaf-spine fabric builder, and SRPT message scheduling.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "innetwork/aggregation.hpp"
#include "mtp/endpoint.hpp"
#include "net/forwarding.hpp"
#include "net/topologies.hpp"
#include "transport/udp.hpp"

namespace mtp {
namespace {

using namespace mtp::sim::literals;
using core::MtpEndpoint;
using core::ReceivedMessage;
using sim::Bandwidth;
using sim::SimTime;

// ------------------------------------------------------------ aggregation

struct AggRig {
  net::Network net;
  std::vector<net::Host*> workers;
  net::Host* server;
  net::Switch* sw;
  net::Link* to_server;
  std::shared_ptr<innetwork::AggregationOffload> agg;
  std::vector<std::unique_ptr<MtpEndpoint>> worker_eps;
  MtpEndpoint* server_ep = nullptr;
  std::unique_ptr<MtpEndpoint> server_ep_storage;

  explicit AggRig(int n_workers, bool with_offload = true) {
    sw = net.add_switch("agg-sw");
    server = net.add_host("ps");
    for (int i = 0; i < n_workers; ++i) {
      net::Host* w = net.add_host("w" + std::to_string(i));
      workers.push_back(w);
      net.connect(*w, *sw, Bandwidth::gbps(100), 1_us);
      sw->add_route(w->id(), static_cast<net::PortIndex>(i));
    }
    auto d = net.connect(*sw, *server, Bandwidth::gbps(100), 1_us);
    to_server = d.forward;
    sw->add_route(server->id(), static_cast<net::PortIndex>(n_workers));
    if (with_offload) {
      agg = std::make_shared<innetwork::AggregationOffload>(
          *sw, innetwork::AggregationOffload::Config{
                   .server = server->id(),
                   .service_port = 90,
                   .fan_in = static_cast<std::uint32_t>(n_workers)});
      sw->add_ingress(agg);
    }
    for (auto* w : workers) {
      worker_eps.push_back(std::make_unique<MtpEndpoint>(*w, core::MtpConfig{}));
    }
    server_ep_storage = std::make_unique<MtpEndpoint>(*server, core::MtpConfig{});
    server_ep = server_ep_storage.get();
  }

  void push_round(std::uint64_t round, std::int64_t grad_bytes,
                  int contributors = -1) {
    const int n = contributors < 0 ? static_cast<int>(workers.size()) : contributors;
    for (int i = 0; i < n; ++i) {
      core::MessageOptions opts;
      opts.dst_port = 90;
      opts.app = net::AppData{"grad:" + std::to_string(round), ""};
      worker_eps[i]->send_message(server->id(), grad_bytes, std::move(opts));
    }
  }
};

TEST(Aggregation, FoldsNGradientsIntoOne) {
  AggRig rig(4);
  std::vector<ReceivedMessage> at_server;
  rig.server_ep->listen(90, [&](const ReceivedMessage& m) { at_server.push_back(m); });
  rig.push_round(1, 100'000);
  rig.net.simulator().run(20_ms);
  ASSERT_EQ(at_server.size(), 1u);  // one aggregate, not four gradients
  EXPECT_EQ(at_server[0].bytes, 100'000);
  EXPECT_EQ(at_server[0].src, rig.sw->id());
  ASSERT_TRUE(at_server[0].app.has_value());
  EXPECT_EQ(at_server[0].app->key, "grad:1");
  EXPECT_EQ(at_server[0].app->value, "agg:4");
  EXPECT_EQ(rig.agg->rounds_completed(), 1u);
  EXPECT_EQ(rig.agg->bytes_in(), 400'000);
  EXPECT_EQ(rig.agg->bytes_out(), 100'000);
}

TEST(Aggregation, WorkersCompleteAgainstTheSwitch) {
  AggRig rig(4);
  rig.server_ep->listen(90, [](const ReceivedMessage&) {});
  int done = 0;
  for (auto& ep : rig.worker_eps) {
    core::MessageOptions opts;
    opts.dst_port = 90;
    opts.app = net::AppData{"grad:7", ""};
    ep->send_message(rig.server->id(), 50'000, std::move(opts),
                     [&](proto::MsgId, SimTime) { ++done; });
  }
  rig.net.simulator().run(20_ms);
  EXPECT_EQ(done, 4);  // every worker's message was acked (by the switch)
}

TEST(Aggregation, ServerLinkCarriesOneGradientPerRound) {
  AggRig rig(8);
  rig.server_ep->listen(90, [](const ReceivedMessage&) {});
  for (std::uint64_t round = 1; round <= 5; ++round) {
    rig.push_round(round, 100'000);
  }
  rig.net.simulator().run(50_ms);
  EXPECT_EQ(rig.agg->rounds_completed(), 5u);
  // 8x reduction: the server-side link saw ~5 x 100KB, not 5 x 800KB.
  EXPECT_LT(rig.to_server->stats().bytes_delivered, 5 * 110'000u + 50'000u);
}

TEST(Aggregation, StragglerTimeoutFlushesPartial) {
  AggRig rig(4);
  std::vector<ReceivedMessage> at_server;
  rig.server_ep->listen(90, [&](const ReceivedMessage& m) { at_server.push_back(m); });
  rig.push_round(3, 80'000, /*contributors=*/3);  // one worker never shows up
  rig.net.simulator().run(20_ms);
  ASSERT_EQ(at_server.size(), 1u);
  EXPECT_EQ(at_server[0].app->value, "agg:3");
  EXPECT_EQ(rig.agg->rounds_flushed_partial(), 1u);
  EXPECT_EQ(rig.agg->rounds_completed(), 0u);
  EXPECT_EQ(rig.agg->rounds_open(), 0u);
}

TEST(Aggregation, InterleavedRoundsStaySeparate) {
  AggRig rig(2);
  std::vector<std::string> keys;
  rig.server_ep->listen(90, [&](const ReceivedMessage& m) { keys.push_back(m.app->key); });
  // Round 10: one contribution now; round 11: both; round 10's second later.
  core::MessageOptions o1;
  o1.dst_port = 90;
  o1.app = net::AppData{"grad:10", ""};
  rig.worker_eps[0]->send_message(rig.server->id(), 10'000, o1);
  rig.push_round(11, 10'000);
  rig.net.simulator().schedule(200_us, [&] {
    core::MessageOptions o2;
    o2.dst_port = 90;
    o2.app = net::AppData{"grad:10", ""};
    rig.worker_eps[1]->send_message(rig.server->id(), 10'000, o2);
  });
  rig.net.simulator().run(20_ms);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "grad:11");  // completed first
  EXPECT_EQ(keys[1], "grad:10");
  EXPECT_EQ(rig.agg->rounds_completed(), 2u);
}

// --------------------------------------------------------- link failures

TEST(LinkFailure, DownLinkBlackholesAndUpRestores) {
  testing::HostPair t;
  transport::UdpSocket server(*t.b, 53);
  transport::UdpSocket client(*t.a, 1000);
  client.send_to(t.b->id(), 53, 100);
  t.sim().run(1_ms);
  EXPECT_EQ(server.datagrams_received(), 1u);

  t.a_to_sw->set_up(false);
  client.send_to(t.b->id(), 53, 100);
  t.sim().run(2_ms);
  EXPECT_EQ(server.datagrams_received(), 1u);  // blackholed
  EXPECT_EQ(t.a_to_sw->stats().pkts_dropped_down, 1u);

  t.a_to_sw->set_up(true);
  client.send_to(t.b->id(), 53, 100);
  t.sim().run(3_ms);
  EXPECT_EQ(server.datagrams_received(), 2u);
}

TEST(LinkFailure, FlapDiscardsQueuedPackets) {
  sim::Simulator simulator;
  net::Host sink(simulator, 9, "sink");
  net::Link link(simulator, "l", Bandwidth::gbps(1), 1_us,
                 std::make_unique<net::DropTailQueue>());
  link.connect_to(sink, 0);
  for (int i = 0; i < 10; ++i) {
    net::Packet p;
    p.src = 0;
    p.dst = 9;
    p.payload_bytes = 10'000;
    link.send(std::move(p));
  }
  EXPECT_GT(link.queue().len_pkts(), 0u);
  link.set_up(false);
  EXPECT_EQ(link.queue().len_pkts(), 0u);
}

TEST(LinkFailure, MessageAwareLbRoutesAroundDeadPath) {
  // Two paths; kill the preferred one mid-message. The policy must re-place
  // the pinned message on the survivor and the transfer must complete.
  net::Network net;
  auto* a = net.add_host("a");
  auto* b = net.add_host("b");
  auto* sw = net.add_switch("sw");
  net.connect(*a, *sw, Bandwidth::gbps(100), 1_us);
  auto p1 = net.connect(*sw, *b, Bandwidth::gbps(100), 1_us);
  auto p2 = net.connect(*sw, *b, Bandwidth::gbps(100), 2_us);
  sw->add_route(a->id(), 0);
  sw->add_route(b->id(), 1);
  sw->add_route(b->id(), 2);
  sw->set_policy(std::make_unique<net::MessageAwarePolicy>());

  MtpEndpoint src(*a, {});
  MtpEndpoint dst(*b, {});
  std::int64_t got = 0;
  dst.listen(80, [&](const ReceivedMessage& m) { got += m.bytes; });
  src.send_message(b->id(), 5'000'000, {.dst_port = 80});
  net.simulator().schedule(20_us, [&] { p1.forward->set_up(false); });
  net.simulator().run(200_ms);
  EXPECT_EQ(got, 5'000'000);
  EXPECT_GT(p2.forward->stats().pkts_delivered, 1000u);
}

TEST(LinkFailure, AutoExclusionKicksInAfterRepeatedTimeouts) {
  // Single path that dies: the endpoint must start excluding the pathlet it
  // learned (observable via the Path Exclude list on retransmissions).
  net::Network net;
  auto* a = net.add_host("a");
  auto* b = net.add_host("b");
  auto* sw = net.add_switch("sw");
  auto up = net.connect(*a, *sw, Bandwidth::gbps(100), 1_us);
  auto down = net.connect(*sw, *b, Bandwidth::gbps(100), 1_us);
  up.forward->set_pathlet({.id = 5, .feedback = proto::FeedbackType::kEcn});
  sw->add_route(a->id(), 0);
  sw->add_route(b->id(), 1);
  core::MtpConfig cfg;
  cfg.auto_exclude_after_losses = 2;
  cfg.exclude_duration = 100_ms;
  MtpEndpoint src(*a, cfg);
  MtpEndpoint dst(*b, cfg);
  dst.listen(80, [](const ReceivedMessage&) {});
  src.send_message(b->id(), 50'000, {.dst_port = 80});
  net.simulator().run(1_ms);         // learn pathlet 5
  down.forward->set_up(false);       // then the path dies
  src.send_message(b->id(), 50'000, {.dst_port = 80});
  net.simulator().run(60_ms);
  // Pathlet 5 accumulated timeout losses and got excluded.
  EXPECT_GT(src.pkts_retransmitted(), 0u);
  // Send one more message; its packets must carry the exclusion.
  // (The simplest observable: the endpoint's exclusion map is active, which
  // we can see via a fresh packet's header by sniffing at the switch.)
  bool saw_exclusion = false;
  class Sniffer : public net::IngressProcessor {
   public:
    explicit Sniffer(bool& flag) : flag_(flag) {}
    bool process(net::Packet& pkt, net::Switch&) override {
      if (pkt.is_mtp() && !pkt.mtp().path_exclude().empty()) flag_ = true;
      return false;
    }
    bool& flag_;
  };
  sw->add_ingress(std::make_shared<Sniffer>(saw_exclusion));
  src.send_message(b->id(), 1'000, {.dst_port = 80});
  net.simulator().run(70_ms);
  EXPECT_TRUE(saw_exclusion);
}

// ------------------------------------------------------------- flowlets

TEST(Flowlet, SticksWithinBurstSwitchesAcrossGaps) {
  // Slow (1G) links so a loaded port keeps its backlog across the gap.
  net::Network net;
  auto* sw = net.add_switch("sw");
  net::Host sink(net.simulator(), 50, "sink");
  net.connect_simplex(*sw, sink, Bandwidth::gbps(1), 1_us,
                      std::make_unique<net::DropTailQueue>(
                          net::DropTailQueue::Config{.capacity_pkts = 1024}));
  net.connect_simplex(*sw, sink, Bandwidth::gbps(1), 1_us,
                      std::make_unique<net::DropTailQueue>(
                          net::DropTailQueue::Config{.capacity_pkts = 1024}));
  net::FlowletPolicy policy(50_us);
  const std::vector<net::PortIndex> cands{0, 1};
  net::Packet p;
  p.flow_hash = 77;
  p.dst = 50;

  const auto first = policy.select(p, cands, *sw);
  // Back-to-back packets: same port.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(policy.select(p, cands, *sw), first);
  // Load up the chosen port: 200 x 1500B at 1G takes 2.4ms to drain.
  for (int i = 0; i < 200; ++i) {
    net::Packet filler;
    filler.dst = 50;
    filler.payload_bytes = 1500;
    sw->out_port(first)->send(std::move(filler));
  }
  net.simulator().run(10_us);  // still within the flowlet gap
  EXPECT_EQ(policy.select(p, cands, *sw), first);
  net.simulator().run(210_us);  // gap exceeded, backlog still present
  EXPECT_NE(policy.select(p, cands, *sw), first);
  EXPECT_GE(policy.flowlet_switches(), 1u);
}

// ------------------------------------------------------------ leaf-spine

TEST(LeafSpine, AllPairsConnectivity) {
  net::Network net;
  net::LeafSpine fabric(net, {.leaves = 3, .spines = 2, .hosts_per_leaf = 2});
  std::vector<std::unique_ptr<transport::UdpSocket>> socks;
  int received = 0;
  for (auto* h : fabric.hosts()) {
    socks.push_back(std::make_unique<transport::UdpSocket>(
        *h, 40, [&](net::Packet&&) { ++received; }));
  }
  int sent = 0;
  for (auto* src : fabric.hosts()) {
    transport::UdpSocket client(*src, 41);
    for (auto* dst : fabric.hosts()) {
      if (src == dst) continue;
      client.send_to(dst->id(), 40, 100);
      ++sent;
    }
  }
  net.simulator().run();
  EXPECT_EQ(received, sent);  // 6 hosts x 5 peers = 30 datagrams
}

TEST(LeafSpine, EcmpUsesAllSpines) {
  net::Network net;
  net::LeafSpine fabric(net, {.leaves = 2, .spines = 4, .hosts_per_leaf = 2},
                        [] { return std::make_unique<net::EcmpPolicy>(); });
  transport::UdpSocket rx(*fabric.host(1, 0), 40);
  transport::UdpSocket tx(*fabric.host(0, 0), 41);
  sim::Rng rng(21);
  // Many flows (varying hash), paced so the host uplink queue never drops:
  // every spine uplink should carry traffic.
  for (int i = 0; i < 400; ++i) {
    net.simulator().schedule(SimTime::nanoseconds(i * 100), [&fabric, &rng] {
      net::Packet p;
      p.src = fabric.host(0, 0)->id();
      p.dst = fabric.host(1, 0)->id();
      p.payload_bytes = 100;
      p.header_bytes = 28;
      p.flow_hash = rng.next_u64();
      p.header = proto::UdpHeader{41, 40, 100};
      fabric.host(0, 0)->send(std::move(p));
    });
  }
  net.simulator().run();
  EXPECT_EQ(rx.datagrams_received(), 400u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_GT(fabric.uplink(0, s)->stats().pkts_delivered, 50u)
        << "spine " << s << " unused";
  }
}

TEST(LeafSpine, MtpTransferAcrossFabricWithSpineFailure) {
  net::Network net;
  net::LeafSpine fabric(net, {.leaves = 2, .spines = 2, .hosts_per_leaf = 1},
                        [] { return std::make_unique<net::MessageAwarePolicy>(); });
  MtpEndpoint src(*fabric.host(0, 0), {});
  MtpEndpoint dst(*fabric.host(1, 0), {});
  std::int64_t got = 0;
  dst.listen(80, [&](const ReceivedMessage& m) { got += m.bytes; });
  src.send_message(fabric.host(1, 0)->id(), 2'000'000, {.dst_port = 80});
  net.simulator().schedule(10_us, [&] { fabric.uplink(0, 0)->set_up(false); });
  net.simulator().run(500_ms);
  EXPECT_EQ(got, 2'000'000);
}

// ------------------------------------------------------------------ srpt

TEST(SrptScheduling, ShortMessageOvertakesLongOne) {
  testing::HostPair t(Bandwidth::gbps(1), 2_us);  // slow link: ordering matters
  core::MtpConfig cfg;
  cfg.scheduling = core::MtpConfig::Scheduling::kSrpt;
  MtpEndpoint src(*t.a, cfg);
  MtpEndpoint dst(*t.b, cfg);
  std::vector<std::int64_t> completion_sizes;
  dst.listen(80, [&](const ReceivedMessage& m) { completion_sizes.push_back(m.bytes); });
  src.send_message(t.b->id(), 2'000'000, {.dst_port = 80});  // long first
  t.sim().run(100_us);                                       // let it get going
  src.send_message(t.b->id(), 20'000, {.dst_port = 80});     // then short
  t.sim().run(500_ms);
  ASSERT_EQ(completion_sizes.size(), 2u);
  EXPECT_EQ(completion_sizes[0], 20'000);  // SRPT: short wins
}

TEST(SrptScheduling, FifoLetsLongOneFinishFirst) {
  testing::HostPair t(Bandwidth::gbps(1), 2_us);
  MtpEndpoint src(*t.a, {});  // default priority-FIFO
  MtpEndpoint dst(*t.b, {});
  std::vector<std::int64_t> completion_sizes;
  dst.listen(80, [&](const ReceivedMessage& m) { completion_sizes.push_back(m.bytes); });
  src.send_message(t.b->id(), 2'000'000, {.dst_port = 80});
  t.sim().run(100_us);
  src.send_message(t.b->id(), 20'000, {.dst_port = 80});
  t.sim().run(500_ms);
  ASSERT_EQ(completion_sizes.size(), 2u);
  EXPECT_EQ(completion_sizes[0], 2'000'000);  // FIFO: arrival order wins
}

}  // namespace
}  // namespace mtp
