// Unit tests for the simulation kernel: time arithmetic, event ordering,
// cancellation, periodic tasks, and RNG distributions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/logging.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mtp::sim {
namespace {

using namespace mtp::sim::literals;

TEST(SimTime, UnitConstructorsAgree) {
  EXPECT_EQ(SimTime::microseconds(1), SimTime::nanoseconds(1000));
  EXPECT_EQ(SimTime::milliseconds(1), SimTime::microseconds(1000));
  EXPECT_EQ(SimTime::seconds(1), SimTime::milliseconds(1000));
  EXPECT_EQ(384_us, SimTime::nanoseconds(384'000));
}

TEST(SimTime, Arithmetic) {
  EXPECT_EQ(3_us + 2_us, 5_us);
  EXPECT_EQ(3_us - 2_us, 1_us);
  EXPECT_EQ((2_us) * 3, 6_us);
  EXPECT_EQ((6_us) / 3, 2_us);
  EXPECT_DOUBLE_EQ((6_us) / (3_us), 2.0);
  EXPECT_EQ((100_ns).scaled(2.5), 250_ns);
}

TEST(SimTime, FromSecondsRounds) {
  EXPECT_EQ(SimTime::from_seconds(1e-6), 1_us);
  EXPECT_EQ(SimTime::from_seconds(1.5e-9), 2_ns);
}

TEST(SimTime, ToStringPicksUnits) {
  EXPECT_EQ((384_us).to_string(), "384us");
  EXPECT_EQ((5_ns).to_string(), "5ns");
  EXPECT_EQ((1_s + 500_ms).to_string(), "1.5s");
}

TEST(Bandwidth, SerializationDelay) {
  // 1500 bytes at 100 Gb/s = 120 ns.
  EXPECT_EQ(Bandwidth::gbps(100).serialization_delay(1500), 120_ns);
  // 1000 bytes at 10 Gb/s = 800 ns.
  EXPECT_EQ(Bandwidth::gbps(10).serialization_delay(1000), 800_ns);
}

TEST(Bandwidth, SerializationDelayNoOverflowOnHugePayloads) {
  // 1 GB at 1 Gb/s = 8 s; would overflow naive int64 ns math at
  // intermediate steps if done carelessly.
  const auto t = Bandwidth::gbps(1).serialization_delay(std::int64_t{1} << 30);
  EXPECT_NEAR(t.sec(), 8.59, 0.01);
}

TEST(Bandwidth, BytesIn) {
  EXPECT_EQ(Bandwidth::gbps(100).bytes_in(1_us), 12500);
  EXPECT_EQ(Bandwidth::gbps(10).bytes_in(8_us), 10000);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30_ns, [&] { order.push_back(3); });
  sim.schedule(10_ns, [&] { order.push_back(1); });
  sim.schedule(20_ns, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30_ns);
}

TEST(Simulator, EqualTimestampsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    sim.schedule(5_ns, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1_ns, [&] {
    sim.schedule(1_ns, [&] {
      sim.schedule(1_ns, [&] { ++fired; });
      ++fired;
    });
    ++fired;
  });
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 3_ns);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule(10_ns, [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelIsIdempotentAndNullSafe) {
  Simulator sim;
  sim.cancel(EventId{});  // null id: no-op
  bool ran = false;
  const EventId id = sim.schedule(10_ns, [&] { ran = true; });
  sim.cancel(id);
  sim.cancel(id);  // double-cancel: no-op
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10_ns, [&] { ++fired; });
  sim.schedule(30_ns, [&] { ++fired; });
  sim.run(20_ns);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 20_ns);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RejectsNegativeDelayAndPastTimes) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(SimTime::nanoseconds(-1), [] {}), std::invalid_argument);
  sim.schedule(10_ns, [&sim] {
    EXPECT_THROW(sim.schedule_at(5_ns, [] {}), std::invalid_argument);
  });
  sim.run();
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 100; ++i) sim.schedule(SimTime::nanoseconds(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 100u);
}

TEST(Simulator, CancelWithStaleGenerationAfterSlotReuseIsNoOp) {
  Simulator sim;
  bool first = false;
  const EventId stale = sim.schedule(10_ns, [&] { first = true; });
  sim.run();
  EXPECT_TRUE(first);
  // The slot behind `stale` has been recycled. New events reuse it (the
  // free list is LIFO), so a cancel through the old id must not touch them.
  bool second = false;
  sim.schedule(10_ns, [&] { second = true; });
  sim.cancel(stale);
  sim.run();
  EXPECT_TRUE(second);
}

TEST(Simulator, CancelAfterExecutionIsNoOp) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule(10_ns, [&] { ++fired; });
  sim.run();
  sim.cancel(id);  // already ran: generation mismatch, no-op
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, SelfCancelFromInsideCallbackIsLegal) {
  Simulator sim;
  int fired = 0;
  EventId id;
  id = sim.schedule(10_ns, [&] {
    ++fired;
    sim.cancel(id);  // cancelling the currently-executing event: no-op
  });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelDoesNotLeakPendingEntries) {
  // Regression: the tombstone-set design retained one entry per cancelled
  // event until it popped; the slot/generation design keeps the heap bounded
  // by live events. Schedule/cancel churn far above the initial reservation
  // must not grow pending_events() beyond the live count.
  Simulator sim;
  for (int i = 0; i < 100'000; ++i) {
    const EventId id = sim.schedule(1_us, [] {});
    sim.cancel(id);
    sim.run(sim.now() + 1_ns);  // pops the cancelled entry lazily
  }
  EXPECT_LE(sim.pending_events(), 1u);
}

// Fuzz the schedule/cancel/run interleaving against a trivial oracle: a
// sorted list of (time, seq) pairs with cancellation flags. Execution order
// must match the oracle exactly — timestamp order, FIFO within a timestamp,
// cancelled events skipped.
TEST(Simulator, FuzzScheduleCancelMatchesOracle) {
  Rng rng(0xC0FFEE);
  Simulator sim;
  struct Expected {
    std::int64_t when_ns;
    std::uint64_t seq;
    bool cancelled = false;
  };
  std::vector<Expected> oracle;
  std::vector<EventId> ids;
  std::vector<std::uint64_t> executed;
  std::uint64_t seq = 0;
  for (int round = 0; round < 50; ++round) {
    const std::int64_t base = sim.now().ns();
    for (int i = 0; i < 40; ++i) {
      const std::int64_t when = base + rng.uniform_int(0, 500);
      const std::uint64_t tag = seq++;
      ids.push_back(sim.schedule_at(SimTime::nanoseconds(when),
                                    [&executed, tag] { executed.push_back(tag); }));
      oracle.push_back({when, tag});
    }
    // Cancel a random ~25% of everything scheduled so far (idempotent:
    // already-run and already-cancelled ids are hit too).
    for (std::size_t i = 0; i < ids.size(); i += static_cast<std::size_t>(rng.uniform_int(1, 8))) {
      sim.cancel(ids[i]);
      if (!oracle[i].cancelled && oracle[i].when_ns >= sim.now().ns()) {
        // Only not-yet-executed events are actually cancellable; the oracle
        // mirrors that by checking against the clock at cancel time.
        bool already_ran = false;
        for (const std::uint64_t tag : executed) {
          if (tag == oracle[i].seq) {
            already_ran = true;
            break;
          }
        }
        if (!already_ran) oracle[i].cancelled = true;
      }
    }
    sim.run(SimTime::nanoseconds(base + rng.uniform_int(0, 600)));
  }
  sim.run();

  std::vector<Expected> live;
  for (const auto& e : oracle) {
    if (!e.cancelled) live.push_back(e);
  }
  std::stable_sort(live.begin(), live.end(), [](const Expected& a, const Expected& b) {
    if (a.when_ns != b.when_ns) return a.when_ns < b.when_ns;
    return a.seq < b.seq;
  });
  ASSERT_EQ(executed.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(executed[i], live[i].seq) << "divergence at position " << i;
  }
}

TEST(Task, SmallLambdaRunsInline) {
  const std::uint64_t before = Task::heap_allocations();
  int hits = 0;
  Task t([&hits] { ++hits; });
  t();
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(Task::heap_allocations(), before);
}

TEST(Task, PacketCapturingLambdaFitsInline) {
  // The tentpole contract: a link-delivery-style closure owning a whole
  // net::Packet must never heap-allocate (see the static_assert in link.cpp).
  net::Packet pkt;
  pkt.payload_bytes = 1000;
  pkt.uid = 42;
  const std::uint64_t before = Task::heap_allocations();
  std::uint64_t seen = 0;
  auto closure = [pkt, &seen] { seen = pkt.uid; };
  static_assert(Task::fits_inline<decltype(closure)>());
  Task t(std::move(closure));
  t();
  EXPECT_EQ(seen, 42u);
  EXPECT_EQ(Task::heap_allocations(), before);
}

TEST(Task, OversizedCallableFallsBackToHeapAndCounts) {
  struct Fat {
    unsigned char pad[Task::kInlineBytes + 1];
    int* out;
    void operator()() { ++*out; }
  };
  static_assert(!Task::fits_inline<Fat>());
  const std::uint64_t before = Task::heap_allocations();
  int hits = 0;
  Task t(Fat{.out = &hits});
  EXPECT_EQ(Task::heap_allocations(), before + 1);
  t();
  EXPECT_EQ(hits, 1);
}

TEST(Task, MoveTransfersCallableAndEmptiesSource) {
  int hits = 0;
  Task a([&hits] { ++hits; });
  Task b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): post-move state is specified
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(PeriodicTask, FiresAtPeriod) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(sim, 10_ns, [&] { ++ticks; });
  task.start();
  sim.run(100_ns);
  EXPECT_EQ(ticks, 9);  // t=10..90
}

TEST(PeriodicTask, StopWorksFromInsideCallback) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(sim, 10_ns, [&] {
    if (++ticks == 3) task.stop();
  });
  task.start();
  sim.run();
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTask, RestartAfterStopResumesTicking) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(sim, 10_ns, [&] { ++ticks; });
  task.start();
  sim.run(35_ns);
  EXPECT_EQ(ticks, 3);  // t=10,20,30
  task.stop();
  sim.run(100_ns);
  EXPECT_EQ(ticks, 3);
  task.start();
  EXPECT_TRUE(task.running());
  sim.run(135_ns);
  EXPECT_EQ(ticks, 6);  // t=110,120,130
}

TEST(PeriodicTask, StartWhileRunningRestartsCleanly) {
  // start() on a running task must cancel the pending tick and rebase the
  // period — no double-fire from the superseded schedule.
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(sim, 10_ns, [&] { ++ticks; });
  task.start();
  sim.run(5_ns);
  task.start(20_ns);  // supersedes the tick pending at t=10
  sim.run(26_ns);
  EXPECT_EQ(ticks, 1);  // only the rebased tick at t=25
  sim.run(36_ns);
  EXPECT_EQ(ticks, 2);  // back on the 10ns period: t=35
}

TEST(PeriodicTask, DestructorCancelsPendingTick) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTask task(sim, 10_ns, [&] { ++ticks; });
    task.start();
  }
  // The task died with a tick pending; running past its deadline must not
  // fire the callback (which would read the destroyed object).
  sim.run(100_ns);
  EXPECT_EQ(ticks, 0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto v = rng.uniform_int(5, 10);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(BoundedPareto, SamplesStayInRange) {
  Rng rng(3);
  BoundedPareto dist(10e3, 1e9, 1.2);
  for (int i = 0; i < 5000; ++i) {
    const double v = dist.sample(rng);
    EXPECT_GE(v, 10e3);
    EXPECT_LE(v, 1e9);
  }
}

TEST(BoundedPareto, SkewedTowardShort) {
  Rng rng(3);
  BoundedPareto dist(10e3, 1e9, 1.2);
  int below_100k = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) below_100k += dist.sample(rng) < 100e3;
  // With alpha 1.2 the vast majority of messages are near the low end.
  EXPECT_GT(below_100k, n * 8 / 10);
}

TEST(BoundedPareto, EmpiricalMeanMatchesAnalytic) {
  Rng rng(5);
  BoundedPareto dist(1e4, 1e6, 1.5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += dist.sample(rng);
  EXPECT_NEAR(sum / n / dist.mean(), 1.0, 0.05);
}

TEST(BoundedPareto, RejectsBadParameters) {
  EXPECT_THROW(BoundedPareto(0, 10, 1), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(10, 5, 1), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(1, 10, 0), std::invalid_argument);
}

TEST(EmpiricalCdf, InterpolatesKnots) {
  EmpiricalCdf cdf({{0, 0.0}, {100, 0.5}, {1000, 1.0}});
  Rng rng(9);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = cdf.sample(rng);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1000.0);
    low += v <= 100.0;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.5, 0.03);
}

TEST(EmpiricalCdf, MeanOfPiecewiseLinear) {
  EmpiricalCdf cdf({{0, 0.0}, {100, 1.0}});
  EXPECT_DOUBLE_EQ(cdf.mean(), 50.0);
}

TEST(EmpiricalCdf, RejectsMalformedKnots) {
  EXPECT_THROW(EmpiricalCdf({{0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(EmpiricalCdf({{0, 0.1}, {1, 1.0}}), std::invalid_argument);
  EXPECT_THROW(EmpiricalCdf({{0, 0.0}, {1, 0.5}, {0.5, 1.0}}), std::invalid_argument);
}

// ---------------------------------------------------------------- logging

TEST(Log, MarkTruncatedLeavesShortMessagesAlone) {
  char buf[32] = "short message";
  const auto v = Log::mark_truncated(buf, sizeof(buf), 13);
  EXPECT_EQ(v, "short message");
}

TEST(Log, MarkTruncatedAppendsMarkerOnOverflow) {
  char buf[32];
  const int len = std::snprintf(buf, sizeof(buf), "%s", std::string(100, 'x').c_str());
  const auto v = Log::mark_truncated(buf, sizeof(buf), len);
  EXPECT_EQ(v.size(), sizeof(buf) - 1);
  EXPECT_NE(v.find("...[truncated]"), std::string_view::npos);
  EXPECT_EQ(v.substr(0, 5), "xxxxx");  // prefix preserved
}

TEST(Log, MtpLogMarksTruncatedMessages) {
  const LogLevel saved = Log::level();
  Log::set_level(LogLevel::kInfo);

  // Overflow the macro's 512-byte buffer; the emitted line must carry the
  // truncation marker instead of being silently cut.
  const std::string huge(1000, 'y');
  testing::internal::CaptureStderr();
  MTP_INFO(SimTime::zero(), "test", "%s", huge.c_str());
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("...[truncated]"), std::string::npos);
  EXPECT_LT(out.size(), huge.size());

  // A message that fits is emitted verbatim, no marker.
  testing::internal::CaptureStderr();
  MTP_INFO(SimTime::zero(), "test", "fits fine");
  const std::string ok = testing::internal::GetCapturedStderr();
  EXPECT_NE(ok.find("fits fine"), std::string::npos);
  EXPECT_EQ(ok.find("...[truncated]"), std::string::npos);

  Log::set_level(saved);
}

}  // namespace
}  // namespace mtp::sim
