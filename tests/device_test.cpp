// Unit tests for in-network device building blocks (DeviceReceiver /
// DeviceSender), multi-packet device interactions under loss, host routing,
// and the low-level wire reader/writer.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "innetwork/device_endpoint.hpp"
#include "innetwork/kvs_cache.hpp"
#include "innetwork/mutation_offload.hpp"
#include "mtp/endpoint.hpp"
#include "proto/wire.hpp"

namespace mtp::innetwork {
namespace {

// Packet uids are per-Simulator; helpers that fabricate packets outside a
// simulation keep uniqueness with a file-local counter.
std::uint64_t next_test_uid() {
  static std::uint64_t counter = 0;
  return ++counter;
}


using namespace mtp::sim::literals;
using core::MtpEndpoint;
using core::ReceivedMessage;
using sim::Bandwidth;
using sim::SimTime;

net::Packet data_pkt(net::NodeId src, net::NodeId dst, proto::MsgId msg,
                     std::uint32_t pkt, std::uint32_t total, std::uint32_t len,
                     proto::PortNum dst_port = 80) {
  net::Packet p;
  p.src = src;
  p.dst = dst;
  p.payload_bytes = len;
  p.header_bytes = 64;
  p.uid = next_test_uid();
  proto::MtpHeader h;
  h.msg_id = msg;
  h.pkt_num = pkt;
  h.msg_len_pkts = total;
  h.msg_len_bytes = static_cast<std::uint64_t>(total) * len;
  h.pkt_len = len;
  h.dst_port = dst_port;
  h.src_port = 9;
  p.header = h;
  return p;
}

struct SwitchRig {
  net::Network net;
  net::Switch* sw;
  net::Host* a;
  net::Host* b;

  SwitchRig() {
    sw = net.add_switch("sw");
    a = net.add_host("a");
    b = net.add_host("b");
    net.connect(*a, *sw, Bandwidth::gbps(100), 1_us);
    net.connect(*sw, *b, Bandwidth::gbps(100), 1_us);
    sw->add_route(a->id(), 0);
    sw->add_route(b->id(), 1);
  }
};

TEST(DeviceReceiver, ReassemblesAndAcksEveryPacket) {
  SwitchRig rig;
  DeviceReceiver rx(*rig.sw, {});
  // Count ACKs the switch injects toward the sender.
  int acks_at_a = 0;
  rig.a->set_mtp_handler([&](net::Packet&& pkt) {
    if (pkt.mtp().is_ack()) ++acks_at_a;
  });
  std::optional<DeviceMessage> done;
  for (std::uint32_t k = 0; k < 3; ++k) {
    auto r = rx.on_data(data_pkt(rig.a->id(), rig.b->id(), 42, k, 3, 1000));
    if (r) done = r;
  }
  rig.net.simulator().run();
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->bytes, 3000);
  EXPECT_EQ(done->src, rig.a->id());
  EXPECT_EQ(done->dst, rig.b->id());
  EXPECT_EQ(acks_at_a, 3);
}

TEST(DeviceReceiver, DuplicateOfCompletedMessageReAcked) {
  SwitchRig rig;
  DeviceReceiver rx(*rig.sw, {});
  int acks_at_a = 0;
  rig.a->set_mtp_handler([&](net::Packet&& pkt) {
    if (pkt.mtp().is_ack()) ++acks_at_a;
  });
  rx.on_data(data_pkt(rig.a->id(), rig.b->id(), 1, 0, 1, 500));
  EXPECT_TRUE(rx.tracking(rig.a->id(), 1));
  // A retransmitted duplicate: re-acked, not delivered twice.
  auto dup = rx.on_data(data_pkt(rig.a->id(), rig.b->id(), 1, 0, 1, 500));
  EXPECT_FALSE(dup.has_value());
  rig.net.simulator().run();
  EXPECT_EQ(acks_at_a, 2);
}

TEST(DeviceReceiver, AdmissibilityUsesMsgLenFromHeader) {
  SwitchRig rig;
  DeviceReceiver::Config cfg;
  cfg.max_message_bytes = 10'000;
  DeviceReceiver rx(*rig.sw, cfg);
  proto::MtpHeader small;
  small.msg_len_bytes = 9'999;
  proto::MtpHeader big;
  big.msg_len_bytes = 10'001;
  EXPECT_TRUE(rx.admissible(small));
  EXPECT_FALSE(rx.admissible(big));
}

TEST(DeviceSender, WindowsEmissionAndClocksOnSacks) {
  SwitchRig rig;
  DeviceSender::Config cfg;
  cfg.window_pkts = 4;
  DeviceSender tx(*rig.sw, cfg);
  int data_at_b = 0;
  rig.b->set_mtp_handler([&](net::Packet&& pkt) {
    if (!pkt.mtp().is_ack()) ++data_at_b;
  });
  const proto::MsgId id = tx.send(rig.b->id(), 10'000, {});  // 10 packets
  rig.net.simulator().run(100_us);  // before the 500us retransmit timer
  EXPECT_EQ(data_at_b, 4);  // window-limited without acks

  // SACK two packets: two more emitted.
  net::Packet ack;
  ack.src = rig.b->id();
  ack.dst = rig.sw->id();
  proto::MtpHeader h;
  h.type = proto::MtpPacketType::kAck;
  h.sack() = {{id, 0}, {id, 1}};
  ack.header = h;
  EXPECT_TRUE(tx.handle_ack(ack));
  rig.net.simulator().run(200_us);
  EXPECT_EQ(data_at_b, 6);
  EXPECT_EQ(tx.outstanding(), 1u);
}

TEST(DeviceSender, NackTriggersImmediateRetransmit) {
  SwitchRig rig;
  DeviceSender tx(*rig.sw, {});
  int data_at_b = 0;
  rig.b->set_mtp_handler([&](net::Packet&& pkt) {
    if (!pkt.mtp().is_ack()) ++data_at_b;
  });
  const proto::MsgId id = tx.send(rig.b->id(), 3'000, {});
  rig.net.simulator().run(100_us);
  EXPECT_EQ(data_at_b, 3);
  net::Packet nack;
  nack.src = rig.b->id();
  nack.dst = rig.sw->id();
  proto::MtpHeader h;
  h.type = proto::MtpPacketType::kAck;
  h.nack() = {{id, 1}};
  nack.header = h;
  EXPECT_TRUE(tx.handle_ack(nack));
  rig.net.simulator().run(200_us);
  EXPECT_EQ(data_at_b, 4);
}

TEST(DeviceSender, AbandonsAfterMaxRetries) {
  SwitchRig rig;
  DeviceSender::Config cfg;
  cfg.max_retries = 2;
  cfg.retx_timeout = 100_us;
  DeviceSender tx(*rig.sw, cfg);
  tx.send(777 /* unroutable */, 1'000, {});
  rig.net.simulator().run(10_ms);
  EXPECT_EQ(tx.outstanding(), 0u);
  EXPECT_EQ(tx.messages_abandoned(), 1u);
}

TEST(DeviceSender, UnknownAckIgnored) {
  SwitchRig rig;
  DeviceSender tx(*rig.sw, {});
  net::Packet ack;
  proto::MtpHeader h;
  h.type = proto::MtpPacketType::kAck;
  h.sack() = {{999, 0}};
  ack.header = h;
  EXPECT_FALSE(tx.handle_ack(ack));
}

// ------------------------------------- multi-packet device interactions

TEST(KvsCache, MultiPacketRequestHitsAfterAdoption) {
  testing::HostPair t;
  MtpEndpoint client(*t.a, {});
  MtpEndpoint backend(*t.b, {});
  auto cache = std::make_shared<KvsCache>(
      *t.sw, KvsCache::Config{.backend = t.b->id(), .service_port = 80});
  t.sw->add_ingress(cache);
  cache->put("bulk-key", "v", 2'000);
  int backend_saw = 0;
  backend.listen(80, [&](const ReceivedMessage&) { ++backend_saw; });
  std::optional<ReceivedMessage> reply;
  client.listen(9000, [&](const ReceivedMessage& m) { reply = m; });
  core::MessageOptions opts;
  opts.src_port = 9000;
  opts.dst_port = 80;
  opts.app = net::AppData{"bulk-key", ""};
  client.send_message(t.b->id(), 50'000, std::move(opts));  // 50-packet request
  t.sim().run(50_ms);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->bytes, 2'000);
  EXPECT_EQ(backend_saw, 0);  // never leaked a single packet to the backend
  EXPECT_EQ(cache->hits(), 1u);
}

TEST(MutationOffload, SurvivesLossOnBothSides) {
  // Tiny queues upstream and downstream of the offload: packets drop in
  // both the original and the re-emitted message; everything still lands.
  net::Network net;
  auto* a = net.add_host("a");
  auto* b = net.add_host("b");
  auto* sw = net.add_switch("sw");
  net.connect(*a, *sw, Bandwidth::gbps(100), 1_us, {.capacity_pkts = 6});
  net.connect(*sw, *b, Bandwidth::gbps(100), 1_us, {.capacity_pkts = 6});
  sw->add_route(a->id(), 0);
  sw->add_route(b->id(), 1);
  MutationOffload::Config ocfg{.match_port = 7000};
  ocfg.sender.window_pkts = 4;    // shallow egress: pace to it
  ocfg.sender.max_retries = 100;  // and keep trying through the loss
  auto offload = std::make_shared<MutationOffload>(*sw, ocfg);
  sw->add_ingress(offload);
  MtpEndpoint src(*a, {});
  MtpEndpoint dst(*b, {});
  std::optional<ReceivedMessage> got;
  dst.listen(7000, [&](const ReceivedMessage& m) { got = m; });
  bool sender_done = false;
  src.send_message(b->id(), 200'000, {.dst_port = 7000},
                   [&](proto::MsgId, SimTime) { sender_done = true; });
  net.simulator().run(500_ms);
  EXPECT_TRUE(sender_done);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->bytes, 100'000);
}

// --------------------------------------------------------- host routing

TEST(HostRouting, RoutesByDestinationWithDefaultFirstPort) {
  net::Network net;
  auto* h = net.add_host("dualhomed");
  auto* n1 = net.add_host("n1");
  auto* n2 = net.add_host("n2");
  net.connect(*h, *n1, Bandwidth::gbps(10), 1_us);
  net.connect(*h, *n2, Bandwidth::gbps(10), 1_us);
  h->add_route(n2->id(), 1);
  int at1 = 0, at2 = 0;
  n1->set_udp_handler(5, [&](net::Packet&&) { ++at1; });
  n2->set_udp_handler(5, [&](net::Packet&&) { ++at2; });
  auto send_to = [&](net::NodeId dst) {
    net::Packet p;
    p.src = h->id();
    p.dst = dst;
    p.payload_bytes = 10;
    p.header = proto::UdpHeader{1, 5, 10};
    h->send(std::move(p));
  };
  send_to(n2->id());  // routed to port 1
  send_to(n1->id());  // default port 0
  send_to(12345);     // unknown: default port 0 (n1 drops silently: wrong dst)
  net.simulator().run();
  EXPECT_EQ(at1, 1);
  EXPECT_EQ(at2, 1);
}

// -------------------------------------------------------------- wire r/w

TEST(Wire, WriterReaderRoundTripMixedWidths) {
  std::vector<std::uint8_t> buf;
  proto::WireWriter w(buf);
  w.put<std::uint8_t>(0xab);
  w.put<std::uint16_t>(0x1234);
  w.put<std::uint32_t>(0xdeadbeef);
  w.put<std::uint64_t>(0x0123456789abcdefULL);
  EXPECT_EQ(buf.size(), 15u);

  proto::WireReader r(buf);
  EXPECT_EQ(r.get<std::uint8_t>(), 0xab);
  EXPECT_EQ(r.get<std::uint16_t>(), 0x1234);
  EXPECT_EQ(r.get<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_EQ(r.get<std::uint64_t>(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_FALSE(r.get<std::uint8_t>().has_value());  // underrun -> nullopt
}

TEST(Wire, ReaderUnderrunDoesNotAdvance) {
  std::vector<std::uint8_t> buf{1, 2};
  proto::WireReader r(buf);
  EXPECT_FALSE(r.get<std::uint32_t>().has_value());
  EXPECT_EQ(r.position(), 0u);
  EXPECT_EQ(r.get<std::uint16_t>(), 0x0201);
}

}  // namespace
}  // namespace mtp::innetwork
