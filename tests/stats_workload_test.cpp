// Tests for the measurement (stats) and workload-generation libraries.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "stats/stats.hpp"
#include "stats/table.hpp"
#include "workload/workload.hpp"

namespace mtp::stats {
namespace {

using namespace mtp::sim::literals;
using sim::SimTime;

TEST(Percentile, NearestRankSemantics) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 90), 9.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 99), 42.0);
}

TEST(Percentile, InputOrderIrrelevant) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 3, 2, 4}, 99), 5.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(mean({2, 4, 6}), 4.0);
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(JainIndex, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_index({10, 10, 10}), 1.0);
  // One hog among n: index = 1/n.
  EXPECT_NEAR(jain_index({100, 0, 0, 0}), 0.25, 1e-9);
  // 80/10 split (the paper's Fig 7 shared-queue outcome).
  EXPECT_NEAR(jain_index({80, 10}), 0.623, 0.001);
  EXPECT_DOUBLE_EQ(jain_index({0, 0}), 1.0);  // degenerate: no traffic
}

TEST(ThroughputMeter, BucketsByWindow) {
  ThroughputMeter m(10_us);
  m.record(SimTime::microseconds(1), 1000);
  m.record(SimTime::microseconds(9), 1000);
  m.record(SimTime::microseconds(11), 500);
  const auto s = m.series();
  ASSERT_EQ(s.size(), 2u);
  // 2000 bytes in 10us = 1.6 Gb/s.
  EXPECT_NEAR(s[0].gbps, 1.6, 1e-9);
  EXPECT_NEAR(s[1].gbps, 0.4, 1e-9);
  EXPECT_EQ(m.total_bytes(), 2500);
}

TEST(ThroughputMeter, GapsAreZeroWindows) {
  ThroughputMeter m(10_us);
  m.record(SimTime::microseconds(5), 100);
  m.record(SimTime::microseconds(45), 100);
  const auto s = m.series();
  ASSERT_EQ(s.size(), 5u);
  EXPECT_GT(s[0].gbps, 0);
  EXPECT_EQ(s[1].gbps, 0);
  EXPECT_EQ(s[2].gbps, 0);
  EXPECT_GT(s[4].gbps, 0);
}

TEST(ThroughputMeter, RejectsZeroWindow) {
  EXPECT_THROW(ThroughputMeter(SimTime::zero()), std::invalid_argument);
}

TEST(FctRecorder, PercentilesOverRecords) {
  FctRecorder r;
  for (int i = 1; i <= 100; ++i) r.record(SimTime::microseconds(i), 1000);
  EXPECT_EQ(r.count(), 100u);
  EXPECT_DOUBLE_EQ(r.p50_us(), 50.0);
  EXPECT_DOUBLE_EQ(r.p99_us(), 99.0);
  EXPECT_DOUBLE_EQ(r.max_us(), 100.0);
  EXPECT_DOUBLE_EQ(r.mean_us(), 50.5);
}

TEST(FctRecorder, CachedSortedViewSurvivesInterleavedRecords) {
  FctRecorder r;
  // Record out of order, read, record more, read again: the cached sorted
  // view must be invalidated by each record and stay correct.
  r.record(SimTime::microseconds(30), 1000);
  r.record(SimTime::microseconds(10), 1000);
  r.record(SimTime::microseconds(20), 1000);
  EXPECT_DOUBLE_EQ(r.p50_us(), 20.0);
  EXPECT_DOUBLE_EQ(r.percentile_us(100), 30.0);
  r.record(SimTime::microseconds(5), 1000);
  EXPECT_DOUBLE_EQ(r.percentile_us(0), 5.0);
  EXPECT_DOUBLE_EQ(r.p50_us(), 10.0);
  EXPECT_DOUBLE_EQ(r.percentile_us(100), 30.0);
}

TEST(FctRecorder, SliceBucketsBySizeHalfOpen) {
  FctRecorder r;
  r.record(SimTime::microseconds(10), 500);      // short
  r.record(SimTime::microseconds(20), 999);      // short (below edge)
  r.record(SimTime::microseconds(300), 1000);    // long (edge is inclusive-min)
  r.record(SimTime::microseconds(500), 50'000);  // long
  const auto s = r.slice(0, 1000);
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.mean_us, 15.0);
  EXPECT_DOUBLE_EQ(s.p50_us, 10.0);
  EXPECT_DOUBLE_EQ(s.max_us, 20.0);
  const auto l = r.slice(1000, std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(l.count, 2u);
  EXPECT_DOUBLE_EQ(l.p99_us, 500.0);
  EXPECT_DOUBLE_EQ(l.max_us, 500.0);
  // Empty bucket: zero-valued summary, no throw.
  const auto none = r.slice(1'000'000, 2'000'000);
  EXPECT_EQ(none.count, 0u);
  EXPECT_DOUBLE_EQ(none.mean_us, 0.0);
  EXPECT_DOUBLE_EQ(none.p99_us, 0.0);
}

TEST(FctRecorder, TracksBytesAlongsideTimes) {
  FctRecorder r;
  r.record(SimTime::microseconds(1), 100);
  r.record(SimTime::microseconds(2), 250);
  ASSERT_EQ(r.sample_bytes().size(), 2u);
  EXPECT_EQ(r.sample_bytes()[1], 250);
  EXPECT_EQ(r.total_bytes(), 350);
}

TEST(TimeSeries, TracksMaxAndFinal) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  ts.record(1_us, 5);
  ts.record(2_us, 9);
  ts.record(3_us, 2);
  EXPECT_DOUBLE_EQ(ts.max_value(), 9);
  EXPECT_DOUBLE_EQ(ts.final_value(), 2);
  EXPECT_EQ(ts.points().size(), 3u);
}

TEST(TablePrinting, AlignsColumns) {
  Table t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"longer-cell", "2"});
  // Smoke: print to a memstream-less FILE — just ensure no crash on stdout.
  t.print(stderr);
  EXPECT_EQ(format("%d-%s", 7, "ok"), "7-ok");
}

}  // namespace
}  // namespace mtp::stats

namespace mtp::workload {
namespace {

using namespace mtp::sim::literals;

TEST(SizeDist, FixedAlwaysSame) {
  sim::Rng rng(1);
  auto d = SizeDist::fixed(16'384);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.sample(rng), 16'384);
  EXPECT_DOUBLE_EQ(d.mean(), 16'384.0);
}

TEST(SizeDist, SkewedStaysInRangeAndSkews) {
  sim::Rng rng(2);
  auto d = SizeDist::skewed(10'000, 1'000'000'000);
  int small = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto v = d.sample(rng);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 1'000'000'000);
    small += v < 100'000;
  }
  EXPECT_GT(small, 4000);  // majority short (paper's workload shape)
}

TEST(SizeDist, EmpiricalSampler) {
  sim::Rng rng(3);
  auto d = SizeDist::empirical(sim::EmpiricalCdf({{1000, 0.0}, {2000, 1.0}}));
  for (int i = 0; i < 100; ++i) {
    const auto v = d.sample(rng);
    EXPECT_GE(v, 1000);
    EXPECT_LE(v, 2000);
  }
  EXPECT_NEAR(d.mean(), 1500.0, 1e-9);
}

TEST(PoissonGenerator, HitsTargetLoad) {
  sim::Simulator simulator;
  sim::Rng rng(4);
  std::int64_t sent_bytes = 0;
  PoissonGenerator gen(simulator, rng, SizeDist::fixed(10'000),
                       sim::Bandwidth::gbps(10), 0.5,
                       [&](std::int64_t b) { sent_bytes += b; });
  gen.start();
  simulator.run(10_ms);
  gen.stop();
  // 50% of 10G over 10ms = 6.25 MB; Poisson noise within ~10%.
  EXPECT_NEAR(static_cast<double>(sent_bytes), 6.25e6, 0.8e6);
  EXPECT_GT(gen.messages_sent(), 500u);
}

TEST(PoissonGenerator, StopHaltsArrivals) {
  sim::Simulator simulator;
  sim::Rng rng(5);
  int n = 0;
  PoissonGenerator gen(simulator, rng, SizeDist::fixed(1000), sim::Bandwidth::gbps(10),
                       0.5, [&](std::int64_t) { ++n; });
  gen.start();
  simulator.run(100_us);
  gen.stop();
  const int at_stop = n;
  simulator.run(1_ms);
  EXPECT_EQ(n, at_stop);
}

TEST(ClosedLoopGenerator, MaintainsConcurrency) {
  sim::Rng rng(6);
  int outstanding = 0, peak = 0, sent = 0;
  ClosedLoopGenerator gen(rng, SizeDist::fixed(1000), 4, [&](std::int64_t) {
    ++outstanding;
    ++sent;
    peak = std::max(peak, outstanding);
  });
  gen.start();
  EXPECT_EQ(sent, 4);
  for (int i = 0; i < 10; ++i) {
    --outstanding;
    gen.on_complete();
  }
  EXPECT_EQ(sent, 14);
  EXPECT_EQ(peak, 4);
  gen.stop();
  --outstanding;
  gen.on_complete();
  EXPECT_EQ(sent, 14);
}

}  // namespace
}  // namespace mtp::workload

namespace mtp::stats {
namespace {

TEST(LogHistogram, QuantilesWithinBucketResolution) {
  LogHistogram h(1.08);
  for (int i = 1; i <= 10000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_NEAR(h.quantile(0.5), 5000, 5000 * 0.09);
  EXPECT_NEAR(h.quantile(0.99), 9900, 9900 * 0.09);
  EXPECT_NEAR(h.mean(), 5000.5, 1.0);
  EXPECT_DOUBLE_EQ(h.max_value(), 10000);
  EXPECT_DOUBLE_EQ(h.min_value(), 1);
}

TEST(LogHistogram, HandlesZeroAndRejectsBadArgs) {
  EXPECT_THROW(LogHistogram(1.0), std::invalid_argument);
  LogHistogram h;
  EXPECT_THROW(h.quantile(0.5), std::invalid_argument);
  h.record(0);
  h.record(100);
  EXPECT_THROW(h.quantile(1.5), std::invalid_argument);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 0.0);  // the zero sample's bucket
  EXPECT_GE(h.quantile(1.0), 100.0);
}

}  // namespace
}  // namespace mtp::stats

namespace mtp::workload {
namespace {

TEST(SizeDistPresets, WebSearchShape) {
  sim::Rng rng(8);
  auto d = SizeDist::web_search();
  int under_50k = 0, over_1m = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const auto v = d.sample(rng);
    EXPECT_GE(v, 6'000);
    EXPECT_LE(v, 30'000'000);
    under_50k += v <= 50'000;
    over_1m += v > 1'000'000;
  }
  EXPECT_NEAR(under_50k, n * 60 / 100, n * 5 / 100);
  EXPECT_NEAR(over_1m, n * 10 / 100, n * 3 / 100);
}

TEST(SizeDistPresets, DataMiningIsMoreExtreme) {
  sim::Rng rng(9);
  auto d = SizeDist::data_mining();
  std::int64_t total = 0, big_bytes = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto v = d.sample(rng);
    total += v;
    if (v > 1'000'000) big_bytes += v;
  }
  // Most flows are tiny, but most *bytes* live in the elephant tail.
  EXPECT_GT(static_cast<double>(big_bytes) / static_cast<double>(total), 0.7);
}

}  // namespace
}  // namespace mtp::workload
