// Network-substrate tests: queue behaviour (drops, ECN), link timing
// (serialization + propagation), switch routing and forwarding policies,
// and pathlet feedback stamping.
#include <gtest/gtest.h>

#include "net/forwarding.hpp"
#include "net/network.hpp"

namespace mtp::net {
namespace {

// Packet uids are per-Simulator; helpers that fabricate packets outside a
// simulation keep uniqueness with a file-local counter.
std::uint64_t next_test_uid() {
  static std::uint64_t counter = 0;
  return ++counter;
}


using namespace mtp::sim::literals;
using sim::Bandwidth;
using sim::SimTime;

Packet make_pkt(NodeId src, NodeId dst, std::uint32_t bytes, Ecn ecn = Ecn::kNotEct) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.payload_bytes = bytes;
  p.ecn = ecn;
  p.uid = next_test_uid();
  return p;
}

/// Test sink node recording arrivals with timestamps.
class SinkNode : public Node {
 public:
  using Node::Node;
  void receive(Packet&& pkt, PortIndex) override {
    arrival_times.push_back(sim_.now());
    pkts.push_back(std::move(pkt));
  }
  std::vector<Packet> pkts;
  std::vector<SimTime> arrival_times;
};

// ----------------------------------------------------------------- queues

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q({.capacity_pkts = 4});
  for (std::uint32_t i = 1; i <= 3; ++i) q.enqueue(make_pkt(0, 1, i * 100));
  EXPECT_EQ(q.len_pkts(), 3u);
  EXPECT_EQ(q.dequeue()->payload_bytes, 100u);
  EXPECT_EQ(q.dequeue()->payload_bytes, 200u);
  EXPECT_EQ(q.dequeue()->payload_bytes, 300u);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTailQueue, DropsWhenFull) {
  DropTailQueue q({.capacity_pkts = 2});
  EXPECT_TRUE(q.enqueue(make_pkt(0, 1, 100)));
  EXPECT_TRUE(q.enqueue(make_pkt(0, 1, 100)));
  EXPECT_FALSE(q.enqueue(make_pkt(0, 1, 100)));
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.stats().bytes_dropped, 100u);
}

TEST(DropTailQueue, TracksByteOccupancy) {
  DropTailQueue q({.capacity_pkts = 10});
  q.enqueue(make_pkt(0, 1, 500));
  q.enqueue(make_pkt(0, 1, 300));
  EXPECT_EQ(q.len_bytes(), 800);
  q.dequeue();
  EXPECT_EQ(q.len_bytes(), 300);
}

TEST(DropTailQueue, EcnMarksAboveThreshold) {
  DropTailQueue q({.capacity_pkts = 10, .ecn_threshold_pkts = 2});
  q.enqueue(make_pkt(0, 1, 100, Ecn::kEct));
  q.enqueue(make_pkt(0, 1, 100, Ecn::kEct));
  q.enqueue(make_pkt(0, 1, 100, Ecn::kEct));  // queue len 2 at enqueue: marked
  EXPECT_EQ(q.dequeue()->ecn, Ecn::kEct);
  EXPECT_EQ(q.dequeue()->ecn, Ecn::kEct);
  EXPECT_EQ(q.dequeue()->ecn, Ecn::kCe);
  EXPECT_EQ(q.stats().ecn_marked, 1u);
}

TEST(DropTailQueue, NeverMarksNonEctPackets) {
  DropTailQueue q({.capacity_pkts = 10, .ecn_threshold_pkts = 0});
  DropTailQueue q2({.capacity_pkts = 10, .ecn_threshold_pkts = 1});
  q2.enqueue(make_pkt(0, 1, 100, Ecn::kNotEct));
  q2.enqueue(make_pkt(0, 1, 100, Ecn::kNotEct));
  EXPECT_EQ(q2.dequeue()->ecn, Ecn::kNotEct);
  EXPECT_EQ(q2.dequeue()->ecn, Ecn::kNotEct);
  (void)q;
}

// ------------------------------------------------------------------ links

TEST(Link, DeliversAfterSerializationPlusPropagation) {
  sim::Simulator sim;
  SinkNode sink(sim, 1, "sink");
  Link link(sim, "l", Bandwidth::gbps(10), 1_us, std::make_unique<DropTailQueue>());
  link.connect_to(sink, 0);
  link.send(make_pkt(0, 1, 1000));  // 1000B at 10G = 800ns tx
  sim.run();
  ASSERT_EQ(sink.pkts.size(), 1u);
  EXPECT_EQ(sink.arrival_times[0], 800_ns + 1_us);
}

TEST(Link, BackToBackPacketsSerializeSequentially) {
  sim::Simulator sim;
  SinkNode sink(sim, 1, "sink");
  Link link(sim, "l", Bandwidth::gbps(10), SimTime::zero(),
            std::make_unique<DropTailQueue>());
  link.connect_to(sink, 0);
  for (int i = 0; i < 3; ++i) link.send(make_pkt(0, 1, 1000));
  sim.run();
  ASSERT_EQ(sink.pkts.size(), 3u);
  EXPECT_EQ(sink.arrival_times[0], 800_ns);
  EXPECT_EQ(sink.arrival_times[1], 1600_ns);
  EXPECT_EQ(sink.arrival_times[2], 2400_ns);
}

TEST(Link, PipelinesSerializationWithPropagation) {
  // Propagation >> serialization: deliveries are spaced by the serialization
  // time, not serialized+propagated (the pipe holds many packets).
  sim::Simulator sim;
  SinkNode sink(sim, 1, "sink");
  Link link(sim, "l", Bandwidth::gbps(100), 10_us, std::make_unique<DropTailQueue>());
  link.connect_to(sink, 0);
  for (int i = 0; i < 2; ++i) link.send(make_pkt(0, 1, 1250));  // 100ns each
  sim.run();
  ASSERT_EQ(sink.pkts.size(), 2u);
  EXPECT_EQ(sink.arrival_times[1] - sink.arrival_times[0], 100_ns);
}

TEST(Link, CountsDeliveredBytes) {
  sim::Simulator sim;
  SinkNode sink(sim, 1, "sink");
  Link link(sim, "l", Bandwidth::gbps(10), SimTime::zero(),
            std::make_unique<DropTailQueue>());
  link.connect_to(sink, 0);
  link.send(make_pkt(0, 1, 700));
  sim.run();
  EXPECT_EQ(link.stats().pkts_delivered, 1u);
  EXPECT_EQ(link.stats().bytes_delivered, 700u);
}

TEST(Link, DownLinkBlackholesSendsAndCountsThem) {
  sim::Simulator sim;
  SinkNode sink(sim, 1, "sink");
  Link link(sim, "l", Bandwidth::gbps(10), 1_us, std::make_unique<DropTailQueue>());
  link.connect_to(sink, 0);
  link.set_up(false);
  EXPECT_FALSE(link.is_up());
  for (int i = 0; i < 3; ++i) link.send(make_pkt(0, 1, 1000));
  sim.run();
  EXPECT_TRUE(sink.pkts.empty());
  EXPECT_EQ(link.stats().pkts_dropped_down, 3u);
  EXPECT_EQ(link.stats().pkts_delivered, 0u);
}

TEST(Link, GoingDownDiscardsQueuedButDeliversInFlight) {
  // Propagation 10us >> serialization 800ns: cut the fiber while packet 1 is
  // propagating, packet 2 is serializing and packet 3 still queued. The
  // propagating and serializing packets are already "in the fiber" behind
  // the cut and arrive; the queued one is discarded by the port flap.
  sim::Simulator sim;
  SinkNode sink(sim, 1, "sink");
  Link link(sim, "l", Bandwidth::gbps(10), 10_us, std::make_unique<DropTailQueue>());
  link.connect_to(sink, 0);
  for (int i = 0; i < 3; ++i) link.send(make_pkt(0, 1, 1000));  // 800ns tx each
  sim.schedule_at(1_us, [&] {
    EXPECT_EQ(link.queue().len_pkts(), 1u);  // pkt 3 queued, pkt 2 serializing
    link.set_up(false);
    EXPECT_EQ(link.queue().len_pkts(), 0u);  // flap discarded the queue
  });
  sim.run();
  EXPECT_EQ(sink.pkts.size(), 2u);
  EXPECT_EQ(link.stats().pkts_delivered, 2u);
}

TEST(Link, FlapToUpResumesTransmission) {
  sim::Simulator sim;
  SinkNode sink(sim, 1, "sink");
  Link link(sim, "l", Bandwidth::gbps(10), 1_us, std::make_unique<DropTailQueue>());
  link.connect_to(sink, 0);
  link.set_up(false);
  link.send(make_pkt(0, 1, 1000));  // blackholed while down
  sim.schedule_at(5_us, [&] {
    link.set_up(true);
    EXPECT_TRUE(link.is_up());
    link.send(make_pkt(0, 1, 1000));  // flows again after the flap
  });
  sim.run();
  ASSERT_EQ(sink.pkts.size(), 1u);
  EXPECT_EQ(sink.arrival_times[0], 5_us + 800_ns + 1_us);
  EXPECT_EQ(link.stats().pkts_dropped_down, 1u);
  EXPECT_EQ(link.stats().pkts_delivered, 1u);
}

TEST(Link, StampsEcnPathletFeedbackOnMtpData) {
  sim::Simulator sim;
  SinkNode sink(sim, 1, "sink");
  Link link(sim, "l", Bandwidth::gbps(10), SimTime::zero(),
            std::make_unique<DropTailQueue>(
                DropTailQueue::Config{.capacity_pkts = 16, .ecn_threshold_pkts = 1}));
  link.connect_to(sink, 0);
  link.set_pathlet({.id = 42, .feedback = proto::FeedbackType::kEcn});

  auto mk = [](bool ack) {
    Packet p = make_pkt(0, 1, 1000, Ecn::kEct);
    proto::MtpHeader h;
    h.type = ack ? proto::MtpPacketType::kAck : proto::MtpPacketType::kData;
    h.tc = 3;
    h.msg_len_pkts = 1;
    p.header = h;
    return p;
  };
  link.send(mk(false));  // dequeued for tx immediately: queue empty, no mark
  link.send(mk(false));  // queue empty at enqueue (pkt 0 in serializer): no mark
  link.send(mk(false));  // pkt 1 still queued: occupancy 1 >= K=1, marked
  link.send(mk(true));   // ACK: never stamped
  sim.run();
  ASSERT_EQ(sink.pkts.size(), 4u);
  const auto& fb0 = sink.pkts[0].mtp().path_feedback();
  ASSERT_EQ(fb0.size(), 1u);
  EXPECT_EQ(fb0[0].pathlet, 42u);
  EXPECT_EQ(fb0[0].tc, 3);
  EXPECT_EQ(fb0[0].feedback.type, proto::FeedbackType::kEcn);
  EXPECT_EQ(fb0[0].feedback.value, 0u);
  EXPECT_EQ(sink.pkts[1].mtp().path_feedback()[0].feedback.value, 0u);
  EXPECT_EQ(sink.pkts[2].mtp().path_feedback()[0].feedback.value, 1u);
  EXPECT_TRUE(sink.pkts[3].mtp().path_feedback().empty());
}

TEST(Link, DoesNotBlameUpstreamCeMarks) {
  sim::Simulator sim;
  SinkNode sink(sim, 1, "sink");
  Link link(sim, "l", Bandwidth::gbps(10), SimTime::zero(),
            std::make_unique<DropTailQueue>());
  link.connect_to(sink, 0);
  link.set_pathlet({.id = 7, .feedback = proto::FeedbackType::kEcn});
  Packet p = make_pkt(0, 1, 1000, Ecn::kCe);  // already marked upstream
  proto::MtpHeader h;
  h.msg_len_pkts = 1;
  p.header = h;
  link.send(std::move(p));
  sim.run();
  ASSERT_EQ(sink.pkts.size(), 1u);
  EXPECT_EQ(sink.pkts[0].mtp().path_feedback()[0].feedback.value, 0u);
}

TEST(Link, DelayFeedbackReportsQueueingDelay) {
  sim::Simulator sim;
  SinkNode sink(sim, 1, "sink");
  Link link(sim, "l", Bandwidth::gbps(10), SimTime::zero(),
            std::make_unique<DropTailQueue>());
  link.connect_to(sink, 0);
  link.set_pathlet({.id = 7, .feedback = proto::FeedbackType::kDelay});
  for (int i = 0; i < 2; ++i) {
    Packet p = make_pkt(0, 1, 1000, Ecn::kEct);
    proto::MtpHeader h;
    h.msg_len_pkts = 1;
    p.header = h;
    link.send(std::move(p));
  }
  sim.run();
  ASSERT_EQ(sink.pkts.size(), 2u);
  // First packet: no queueing. Second waited one serialization time (800ns).
  EXPECT_EQ(sink.pkts[0].mtp().path_feedback()[0].feedback.value, 0u);
  EXPECT_EQ(sink.pkts[1].mtp().path_feedback()[0].feedback.value, 800u);
}

TEST(PathletState, RcpRateConvergesTowardCapacityWhenIdle) {
  PathletConfig cfg{.id = 1, .feedback = proto::FeedbackType::kRate};
  PathletState st(cfg, Bandwidth::gbps(100));
  // Start from a clamped-down rate, no arrivals, empty queue: rate recovers.
  for (int i = 0; i < 50; ++i) st.periodic_update(0);
  EXPECT_EQ(st.rcp_rate().bits_per_sec(), Bandwidth::gbps(100).bits_per_sec());
}

TEST(PathletState, RcpRateDropsUnderOverload) {
  PathletConfig cfg{.id = 1, .feedback = proto::FeedbackType::kRate};
  cfg.rcp_period = 10_us;
  cfg.rcp_rtt = 10_us;
  PathletState st(cfg, Bandwidth::gbps(10));
  // Offer 2x capacity with a standing queue for a while.
  const std::int64_t bytes_per_period = Bandwidth::gbps(20).bytes_in(10_us);
  for (int i = 0; i < 100; ++i) {
    st.on_arrival(bytes_per_period);
    st.periodic_update(/*queue_bytes=*/100'000);
  }
  EXPECT_LT(st.rcp_rate().bits_per_sec(), Bandwidth::gbps(10).bits_per_sec());
}

// --------------------------------------------------------------- switches

TEST(Switch, RoutesToConfiguredPort) {
  Network net;
  Host* a = net.add_host("a");
  Switch* sw = net.add_switch("sw");
  Host* b = net.add_host("b");
  net.connect(*a, *sw, Bandwidth::gbps(10), 100_ns);
  net.connect(*sw, *b, Bandwidth::gbps(10), 100_ns);
  // Switch out-ports: 0 = back toward a, 1 = toward b.
  sw->add_route(b->id(), 1);
  sw->add_route(a->id(), 0);

  int got = 0;
  b->set_udp_handler(9, [&](Packet&&) { ++got; });
  Packet p = make_pkt(a->id(), b->id(), 100);
  p.header = proto::UdpHeader{1, 9, 100};
  a->send(std::move(p));
  net.simulator().run();
  EXPECT_EQ(got, 1);
}

TEST(Switch, DropsWhenNoRoute) {
  Network net;
  Host* a = net.add_host("a");
  Switch* sw = net.add_switch("sw");
  net.connect(*a, *sw, Bandwidth::gbps(10), 100_ns);
  a->send(make_pkt(a->id(), 77, 100));
  net.simulator().run();
  EXPECT_EQ(sw->no_route_drops(), 1u);
}

TEST(ForwardingPolicies, SprayAlternatesPorts) {
  SprayPolicy spray;
  const std::vector<PortIndex> cands{3, 5};
  Network net;
  Switch* sw = net.add_switch("sw");
  Packet p = make_pkt(0, 1, 100);
  EXPECT_EQ(spray.select(p, cands, *sw), 3u);
  EXPECT_EQ(spray.select(p, cands, *sw), 5u);
  EXPECT_EQ(spray.select(p, cands, *sw), 3u);
}

TEST(ForwardingPolicies, EcmpIsDeterministicPerFlow) {
  EcmpPolicy ecmp;
  const std::vector<PortIndex> cands{0, 1, 2, 3};
  Network net;
  Switch* sw = net.add_switch("sw");
  Packet p = make_pkt(0, 1, 100);
  p.flow_hash = 0x1234567890;
  const PortIndex first = ecmp.select(p, cands, *sw);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ecmp.select(p, cands, *sw), first);
}

TEST(ForwardingPolicies, EcmpSpreadsAcrossFlows) {
  EcmpPolicy ecmp;
  const std::vector<PortIndex> cands{0, 1, 2, 3};
  Network net;
  Switch* sw = net.add_switch("sw");
  std::vector<int> hits(4, 0);
  sim::Rng rng(17);
  for (int i = 0; i < 4000; ++i) {
    Packet p = make_pkt(0, 1, 100);
    p.flow_hash = rng.next_u64();
    ++hits[ecmp.select(p, cands, *sw)];
  }
  for (int h : hits) EXPECT_NEAR(h, 1000, 150);
}

TEST(ForwardingPolicies, AlternatingFlipsOnPeriod) {
  Network net;
  Switch* sw = net.add_switch("sw");
  AlternatingPathPolicy alt(384_us);
  const std::vector<PortIndex> cands{0, 1};
  Packet p = make_pkt(0, 1, 100);
  EXPECT_EQ(alt.select(p, cands, *sw), 0u);  // t = 0
  net.simulator().run(385_us);               // advance the clock
  EXPECT_EQ(alt.select(p, cands, *sw), 1u);
  net.simulator().run(769_us);
  EXPECT_EQ(alt.select(p, cands, *sw), 0u);
}

TEST(ForwardingPolicies, MessageAwarePinsWholeMessage) {
  Network net;
  Switch* sw = net.add_switch("sw");
  SinkNode sink_a(net.simulator(), 50, "a"), sink_b(net.simulator(), 51, "b");
  Link* la = net.connect_simplex(*sw, sink_a, Bandwidth::gbps(100), 100_ns,
                                 std::make_unique<DropTailQueue>());
  Link* lb = net.connect_simplex(*sw, sink_b, Bandwidth::gbps(100), 100_ns,
                                 std::make_unique<DropTailQueue>());
  (void)la;
  (void)lb;
  MessageAwarePolicy policy;
  const std::vector<PortIndex> cands{0, 1};

  auto mk = [](proto::MsgId msg, std::uint32_t pkt, std::uint32_t total) {
    Packet p = make_pkt(7, 1, 1000);
    proto::MtpHeader h;
    h.msg_id = msg;
    h.pkt_num = pkt;
    h.msg_len_pkts = total;
    p.header = h;
    return p;
  };
  const PortIndex first = policy.select(mk(1, 0, 5), cands, *sw);
  for (std::uint32_t k = 1; k < 5; ++k) {
    EXPECT_EQ(policy.select(mk(1, k, 5), cands, *sw), first);
  }
  // Pin is released after the last packet.
  EXPECT_EQ(policy.pinned_messages(), 0u);
}

TEST(ForwardingPolicies, MessageAwarePrefersLessLoadedPath) {
  Network net;
  Switch* sw = net.add_switch("sw");
  SinkNode sink(net.simulator(), 50, "s");
  net.connect_simplex(*sw, sink, Bandwidth::gbps(100), 100_ns,
                      std::make_unique<DropTailQueue>());
  Link* lb = net.connect_simplex(*sw, sink, Bandwidth::gbps(100), 100_ns,
                                 std::make_unique<DropTailQueue>());
  // Pre-load path 0 (port 0) with traffic.
  for (int i = 0; i < 32; ++i) sw->out_port(0)->send(make_pkt(7, 50, 1500));
  (void)lb;
  MessageAwarePolicy policy;
  const std::vector<PortIndex> cands{0, 1};
  Packet p = make_pkt(7, 50, 1000);
  proto::MtpHeader h;
  h.msg_id = 9;
  h.msg_len_pkts = 1;
  p.header = h;
  EXPECT_EQ(policy.select(p, cands, *sw), 1u);
}

TEST(Network, CountsNodesAndLinks) {
  Network net;
  Host* a = net.add_host("a");
  Host* b = net.add_host("b");
  net.connect(*a, *b, Bandwidth::gbps(10), 1_us);
  EXPECT_EQ(net.node_count(), 2u);
  EXPECT_EQ(net.link_count(), 2u);  // duplex = two simplex links
}

}  // namespace
}  // namespace mtp::net
