// Transport conformance battery.
//
// Every transport in transport::TransportRegistry — MTP, TCP, DCTCP, the
// Homa-style receiver-driven transport and the MPTCP subflow model — must
// honor the same contract behind the transport::Transport API:
//
//   1. exactly-once completion: every submitted message fires its done
//      callback exactly once (aborts count, like TCP's per-message client);
//   2. FCT monotonicity: on an idle path, a bigger message never finishes
//      faster than a smaller one;
//   3. liveness under faults: a mid-run link flap delays but never loses
//      completions;
//   4. shard invariance: the (fct, bytes) completion multiset is identical
//      at 1, 2 and 4 space shards.
//
// The suite is parameterized by registry name, so a transport added by a
// downstream test automatically gets no coverage here — but the registry
// tests at the bottom show how to plug one in.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "scenario/scenario.hpp"

namespace mtp::scenario {
namespace {

class TransportConformance : public ::testing::TestWithParam<const char*> {};

workload::ArrivalSchedule spaced_schedule(int per_sender, int senders,
                                          std::int64_t bytes, sim::SimTime gap) {
  workload::ArrivalSchedule sched;
  sim::SimTime t = 1_us;
  for (int m = 0; m < per_sender; ++m) {
    for (int s = 0; s < senders; ++s) {
      sched.add(t, static_cast<std::uint32_t>(s), bytes);
      t += gap;
    }
  }
  return sched;
}

TEST_P(TransportConformance, EveryMessageCompletesExactlyOnce) {
  auto s = ScenarioBuilder()
               .seed(11)
               .topology(topo::incast(4))
               .transport(GetParam())
               .workload(spaced_schedule(3, 4, 20'000, 5_us))
               .build();
  EXPECT_EQ(s->transport_name(), GetParam());
  s->run();
  EXPECT_EQ(s->fct().count(), 12u);
  EXPECT_EQ(s->replayed(), 12u);
  std::uint64_t completed = 0;
  for (std::size_t i = 0; i < s->num_senders(); ++i) {
    completed += s->sender(i).completed();
  }
  EXPECT_EQ(completed, 12u);
  const transport::TransportMetrics m = s->transport_metrics();
  EXPECT_EQ(m.msgs_completed, 12u);
  EXPECT_GT(m.pkts_sent, 0u);
}

TEST_P(TransportConformance, FctGrowsWithMessageSize) {
  auto s = ScenarioBuilder()
               .seed(5)
               .topology(topo::incast(1))
               .transport(GetParam())
               .build();
  // One message at a time, 1 ms apart — far longer than any FCT here, so
  // each size runs on an idle network.
  constexpr std::int64_t kSizes[] = {2'000, 16'000, 64'000, 256'000};
  std::vector<sim::SimTime> fct(4);
  auto& sim = s->simulator();
  for (int i = 0; i < 4; ++i) {
    sim.schedule_keyed_at(
        sim::SimTime::microseconds(1'000 * (i + 1)), 0x7e57c0deULL + i,
        [&s, &fct, &kSizes, i] {
          s->sender(0).send_message(
              kSizes[i], [&fct, i](sim::SimTime t, std::int64_t) { fct[i] = t; });
        });
  }
  s->run();
  for (int i = 0; i < 4; ++i) {
    ASSERT_GT(fct[i].ns(), 0) << "message " << i << " never completed";
  }
  for (int i = 1; i < 4; ++i) {
    EXPECT_GE(fct[i].ns(), fct[i - 1].ns())
        << kSizes[i] << "B finished faster than " << kSizes[i - 1] << "B";
  }
}

TEST_P(TransportConformance, CompletesAcrossLinkFlap) {
  // ECMP over dual paths; the first path dies at 60 us for 300 us, while
  // the workload is still arriving. Recovery may be slow (RTO backoff) but
  // every message must still complete.
  auto s = ScenarioBuilder()
               .seed(9)
               .topology(topo::dual_path(2))
               .forwarding(Forwarding::kEcmp)
               .transport(GetParam())
               .workload(spaced_schedule(5, 2, 40'000, 10_us))
               .flap(0, 60_us, 300_us)
               .build();
  s->run();
  EXPECT_EQ(s->fct().count(), 10u);
}

/// incast(4) with sender i placed on shard i mod shards; switch + receiver
/// on shard 0. Node creation ORDER is identical for every shard count (only
/// placement differs), which the sharded engine's determinism contract
/// requires.
TopologyFn sharded_incast(int senders) {
  return [=](net::Network& net) {
    const net::DropTailQueue::Config q{.capacity_pkts = 128, .ecn_threshold_pkts = 20};
    Topology t;
    net::Switch* sw = net.add_switch("sw");
    net::Host* rcv = net.add_host("recv");
    for (int i = 0; i < senders; ++i) {
      net.set_build_shard(static_cast<unsigned>(i) % net.shards());
      net::Host* h = net.add_host("h" + std::to_string(i));
      t.senders.push_back(h);
      net.connect(*h, *sw, sim::Bandwidth::gbps(100), 1_us, q);
      sw->add_route(h->id(), static_cast<net::PortIndex>(i));
    }
    net.set_build_shard(0);
    auto down = net.connect(*sw, *rcv, sim::Bandwidth::gbps(100), 1_us, q);
    sw->add_route(rcv->id(), static_cast<net::PortIndex>(senders));
    t.receiver = rcv;
    t.lb_switches = {sw};
    t.paths = {down.forward};
    t.fault_links = {down.forward};
    return t;
  };
}

std::tuple<std::uint64_t, std::size_t> digest_run(const char* transport,
                                                  unsigned shards) {
  auto s = ScenarioBuilder()
               .seed(21)
               .shards(shards)
               .topology(sharded_incast(4))
               .transport(transport)
               .workload(spaced_schedule(4, 4, 12'000, 3_us))
               .build();
  s->run();
  return {s->fct_digest(), s->fct().count()};
}

TEST_P(TransportConformance, FctDigestInvariantAcrossShardCounts) {
  const auto one = digest_run(GetParam(), 1);
  EXPECT_EQ(std::get<1>(one), 16u);
  for (unsigned shards : {2u, 4u}) {
    EXPECT_EQ(digest_run(GetParam(), shards), one) << shards << " shards";
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, TransportConformance,
                         ::testing::Values("mtp", "tcp", "dctcp", "homa",
                                           "mptcp"),
                         [](const auto& info) { return std::string(info.param); });

// --- registry behavior -------------------------------------------------------

TEST(TransportRegistry, UnknownNameFailsListingRegistered) {
  ScenarioBuilder b;
  b.seed(1).topology(topo::incast(1)).transport("quic");
  try {
    b.build();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("quic"), std::string::npos);
    for (const char* n : {"mtp", "tcp", "dctcp", "homa", "mptcp"}) {
      EXPECT_NE(what.find(n), std::string::npos) << n << " missing from: " << what;
    }
  }
}

TEST(TransportRegistry, CustomTransportsPlugIn) {
  transport::TransportRegistry::global().add(
      "mtp-tuned", [](const transport::TransportBuildContext& ctx,
                      const transport::TransportConfig& cfg) {
        transport::TransportConfig c = cfg;
        c.mtp.scheduling = core::MtpConfig::Scheduling::kSrpt;
        return std::make_unique<transport::MtpFleet>(ctx, c);
      });
  auto s = ScenarioBuilder()
               .seed(2)
               .topology(topo::incast(2))
               .transport("mtp-tuned")
               .workload(spaced_schedule(2, 2, 8'000, 4_us))
               .build();
  s->run();
  EXPECT_EQ(s->fct().count(), 4u);
  // Concrete accessors still work through the custom factory's fleet type.
  EXPECT_NE(s->mtp_sender(0), nullptr);
}

}  // namespace
}  // namespace mtp::scenario
