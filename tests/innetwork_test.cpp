// In-network computing device tests: terminating proxy, fair queues,
// trimming, fair-share policer, KVS cache, mutation offload, L7 LB, and the
// bulk/blob layer that rides on them.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "innetwork/device_endpoint.hpp"
#include "innetwork/fair_policer.hpp"
#include "innetwork/kvs_cache.hpp"
#include "innetwork/l7_lb.hpp"
#include "innetwork/mutation_offload.hpp"
#include "innetwork/queues.hpp"
#include "innetwork/tcp_proxy.hpp"
#include "mtp/bulk.hpp"
#include "mtp/endpoint.hpp"
#include "transport/apps.hpp"

namespace mtp::innetwork {
namespace {

// Packet uids are per-Simulator; helpers that fabricate packets outside a
// simulation keep uniqueness with a file-local counter.
std::uint64_t next_test_uid() {
  static std::uint64_t counter = 0;
  return ++counter;
}


using namespace mtp::sim::literals;
using core::MtpEndpoint;
using core::ReceivedMessage;
using sim::Bandwidth;
using sim::SimTime;

net::Packet mtp_data(net::NodeId src, net::NodeId dst, proto::MsgId msg,
                     std::uint32_t pkt, std::uint32_t total, std::uint32_t len,
                     proto::TrafficClassId tc = 0) {
  net::Packet p;
  p.src = src;
  p.dst = dst;
  p.payload_bytes = len;
  p.header_bytes = 64;
  p.tc = tc;
  p.uid = next_test_uid();
  proto::MtpHeader h;
  h.msg_id = msg;
  h.pkt_num = pkt;
  h.msg_len_pkts = total;
  h.msg_len_bytes = static_cast<std::uint64_t>(total) * len;
  h.pkt_len = len;
  h.tc = tc;
  p.header = h;
  return p;
}

// ------------------------------------------------------------------ queues

TEST(WfqQueue, EqualServiceForUnequalArrivals) {
  WfqQueue q({.per_tc_capacity_pkts = 1000, .quantum_bytes = 1500});
  // TC1 floods 8x more than TC2.
  for (int i = 0; i < 800; ++i) q.enqueue(mtp_data(1, 9, i, 0, 1, 1000, 1));
  for (int i = 0; i < 100; ++i) q.enqueue(mtp_data(2, 9, 1000 + i, 0, 1, 1000, 2));
  int tc1 = 0, tc2 = 0;
  for (int i = 0; i < 200; ++i) {
    auto pkt = q.dequeue();
    ASSERT_TRUE(pkt.has_value());
    (pkt->tc == 1 ? tc1 : tc2)++;
  }
  // While both are backlogged, service alternates nearly equally.
  EXPECT_NEAR(tc1, tc2, 4);
}

TEST(WfqQueue, PerTcIsolationOnDrops) {
  WfqQueue q({.per_tc_capacity_pkts = 4});
  for (int i = 0; i < 10; ++i) q.enqueue(mtp_data(1, 9, i, 0, 1, 1000, 1));
  EXPECT_TRUE(q.enqueue(mtp_data(2, 9, 99, 0, 1, 1000, 2)));  // TC2 unaffected
  EXPECT_EQ(q.stats().dropped, 6u);
  EXPECT_EQ(q.tc_len_pkts(1), 4u);
  EXPECT_EQ(q.tc_len_pkts(2), 1u);
}

TEST(WfqQueue, DrainsCompletely) {
  WfqQueue q({});
  for (int i = 0; i < 5; ++i) q.enqueue(mtp_data(1, 9, i, 0, 1, 500, i % 3));
  int n = 0;
  while (q.dequeue().has_value()) ++n;
  EXPECT_EQ(n, 5);
  EXPECT_EQ(q.len_pkts(), 0u);
  EXPECT_EQ(q.len_bytes(), 0);
}

TEST(TrimmingQueue, TrimsMtpDataInsteadOfDropping) {
  TrimmingQueue q({.capacity_pkts = 2});
  q.enqueue(mtp_data(1, 9, 1, 0, 1, 1000));
  q.enqueue(mtp_data(1, 9, 2, 0, 1, 1000));
  q.enqueue(mtp_data(1, 9, 3, 0, 1, 1000));  // over capacity: trimmed
  EXPECT_EQ(q.trimmed(), 1u);
  EXPECT_EQ(q.stats().dropped, 0u);
  // Trimmed header comes out FIRST (control lane priority).
  auto first = q.dequeue();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->payload_bytes, 0u);
  EXPECT_EQ(first->mtp().msg_id, 3u);
  EXPECT_EQ(first->mtp().pkt_len, 1000u);  // header still says what was lost
}

TEST(TrimmingQueue, NonMtpOverflowStillDrops) {
  TrimmingQueue q({.capacity_pkts = 1});
  net::Packet p1;
  p1.payload_bytes = 500;
  net::Packet p2;
  p2.payload_bytes = 500;
  EXPECT_TRUE(q.enqueue(std::move(p1)));
  EXPECT_FALSE(q.enqueue(std::move(p2)));
  EXPECT_EQ(q.stats().dropped, 1u);
}

// -------------------------------------------------------------- tcp proxy

struct ProxyRig {
  net::Network net;
  net::Host* client;
  net::Host* proxy;
  net::Host* server;

  // client --100G-- proxy --40G-- server (the paper's Fig 2 rates).
  ProxyRig() {
    client = net.add_host("client");
    proxy = net.add_host("proxy");
    server = net.add_host("server");
    net.connect(*client, *proxy, Bandwidth::gbps(100), 1_us,
                {.capacity_pkts = 1024});
    net.connect(*proxy, *server, Bandwidth::gbps(40), 1_us,
                {.capacity_pkts = 1024});
    // The proxy is dual-homed: port 0 faces the client, port 1 the server.
    proxy->add_route(server->id(), 1);
  }
};

TEST(TcpProxy, RelaysBytesEndToEnd) {
  ProxyRig r;
  transport::TcpStack cs(*r.client, {});
  transport::TcpStack ps(*r.proxy, {});
  transport::TcpStack ss(*r.server, {});
  transport::TcpSink sink(ss, 80);
  TcpProxy proxy(ps, {.listen_port = 80, .backend = r.server->id(), .backend_port = 80});
  auto conn = cs.connect(r.proxy->id(), 80);
  conn->on_established = [&] {
    conn->send(200'000);
    conn->close();
  };
  r.net.simulator().run(50_ms);
  EXPECT_EQ(sink.bytes_received(), 200'000);
  EXPECT_EQ(proxy.bytes_relayed(), 200'000);
}

TEST(TcpProxy, UnlimitedWindowBufferGrowsWithRateMismatch) {
  ProxyRig r;
  transport::TcpStack cs(*r.client, {});
  transport::TcpStack ps(*r.proxy, {});  // default: effectively unlimited rwnd
  transport::TcpStack ss(*r.server, {});
  transport::TcpSink sink(ss, 80);
  TcpProxy proxy(ps, {.listen_port = 80, .backend = r.server->id(), .backend_port = 80});
  transport::TcpBulkSource src(cs, r.proxy->id(), 80);
  std::int64_t peak = 0;
  sim::PeriodicTask probe(r.net.simulator(), 20_us, [&] {
    peak = std::max(peak, proxy.buffer_occupancy());
  });
  probe.start();
  r.net.simulator().run(2_ms);
  // 100G in, 40G out: ~60Gb/s of imbalance accumulates in the proxy.
  // In 2ms that is ~15MB; require at least a few MB to show the trend.
  EXPECT_GT(peak, 3'000'000);
}

TEST(TcpProxy, LimitedWindowBoundsBufferButAddsHolLatency) {
  ProxyRig r;
  transport::TcpStack cs(*r.client, {});
  transport::TcpConfig pcfg;
  pcfg.rcv_buf_bytes = 100 * 1000;  // 100 packets
  transport::TcpStack ps(*r.proxy, pcfg);
  transport::TcpStack ss(*r.server, {});
  transport::TcpSink sink(ss, 80);
  TcpProxy proxy(ps, {.listen_port = 80,
                      .backend = r.server->id(),
                      .backend_port = 80,
                      .forward_buffer_bytes = 100 * 1000});
  transport::TcpBulkSource src(cs, r.proxy->id(), 80);
  std::int64_t peak = 0;
  sim::PeriodicTask probe(r.net.simulator(), 20_us, [&] {
    peak = std::max(peak, proxy.buffer_occupancy());
  });
  probe.start();
  r.net.simulator().run(2_ms);
  EXPECT_LT(peak, 250'000);  // bounded by rwnd + forward buffer
  EXPECT_GT(sink.bytes_received(), 1'000'000);  // still flowing at ~40G
}

// --------------------------------------------------------------- policer

TEST(FairSharePolicer, EqualizesTwoMtpTenantsOnSharedQueue) {
  // Two senders (TC 1, TC 2) into one 10G bottleneck; tenant 2 sends 8x the
  // messages. Shared drop-tail queue + policer; MTP per-TC windows react.
  testing::Dumbbell t(2, Bandwidth::gbps(10), 2_us,
                      {.capacity_pkts = 256, .ecn_threshold_pkts = 40});
  t.bottleneck->set_pathlet({.id = 1, .feedback = proto::FeedbackType::kEcn});
  auto policer = std::make_shared<FairSharePolicer>(
      t.sim(), FairSharePolicer::Config{.egress = t.bottleneck});
  t.sw->add_ingress(policer);

  MtpEndpoint s1(*t.senders[0], {});
  MtpEndpoint s2(*t.senders[1], {});
  MtpEndpoint r(*t.receiver, {});
  std::array<std::int64_t, 3> got{};
  r.listen_any([&](const ReceivedMessage& m) { got[m.tc] += m.bytes; });

  // Tenant 1: one outstanding 50KB message at a time. Tenant 2: eight.
  std::function<void()> feed1 = [&] {
    s1.send_message(t.receiver->id(), 50'000, {.tc = 1, .dst_port = 80},
                    [&](proto::MsgId, SimTime) { feed1(); });
  };
  std::function<void()> feed2 = [&] {
    s2.send_message(t.receiver->id(), 50'000, {.tc = 2, .dst_port = 80},
                    [&](proto::MsgId, SimTime) { feed2(); });
  };
  feed1();
  for (int i = 0; i < 8; ++i) feed2();
  t.sim().run(20_ms);

  const double g1 = static_cast<double>(got[1]);
  const double g2 = static_cast<double>(got[2]);
  EXPECT_GT(g1 + g2, 0);
  // Near-equal split despite the 8x message-count imbalance.
  EXPECT_GT(stats::jain_index({g1, g2}), 0.9);
  EXPECT_GT(policer->marked() + policer->dropped(), 0u);
}

// -------------------------------------------------------------- kvs cache

struct CacheRig {
  testing::HostPair t;  // a = client, b = backend, sw between
  MtpEndpoint client;
  MtpEndpoint backend;
  std::shared_ptr<KvsCache> cache;
  std::uint64_t backend_requests = 0;

  CacheRig() : t(), client(*t.a, {}), backend(*t.b, {}) {
    cache = std::make_shared<KvsCache>(
        *t.sw, KvsCache::Config{.backend = t.b->id(), .service_port = 80});
    t.sw->add_ingress(cache);
    backend.listen(80, [this](const ReceivedMessage& m) {
      ++backend_requests;
      // Backend answers GETs with a 4KB value.
      core::MessageOptions opts;
      opts.dst_port = m.src_port;
      opts.app = net::AppData{m.app ? m.app->key : "", "value-from-backend"};
      backend.send_message(m.src, 4000, std::move(opts));
    });
  }
};

TEST(KvsCache, HitAnsweredInNetworkBackendBypassed) {
  CacheRig r;
  r.cache->put("hot", "cached-value", 4000);
  std::optional<ReceivedMessage> reply;
  r.client.listen(9000, [&](const ReceivedMessage& m) { reply = m; });
  core::MessageOptions opts;
  opts.src_port = 9000;
  opts.dst_port = 80;
  opts.app = net::AppData{"hot", ""};
  r.client.send_message(r.t.b->id(), 100, std::move(opts));
  r.t.sim().run(20_ms);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->bytes, 4000);
  EXPECT_EQ(reply->src, r.t.sw->id());  // answered by the switch, not b
  ASSERT_TRUE(reply->app.has_value());
  EXPECT_EQ(reply->app->value, "cached-value");
  EXPECT_EQ(r.backend_requests, 0u);
  EXPECT_EQ(r.cache->hits(), 1u);
  EXPECT_EQ(r.client.outstanding_messages(), 0u);  // request acked by cache
}

TEST(KvsCache, MissPassesThroughAndLearns) {
  CacheRig r;
  std::optional<ReceivedMessage> reply;
  r.client.listen(9000, [&](const ReceivedMessage& m) { reply = m; });
  core::MessageOptions opts;
  opts.src_port = 9000;
  opts.dst_port = 80;
  opts.app = net::AppData{"cold", ""};
  r.client.send_message(r.t.b->id(), 100, std::move(opts));
  r.t.sim().run(20_ms);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->src, r.t.b->id());  // backend answered
  EXPECT_EQ(r.backend_requests, 1u);
  EXPECT_EQ(r.cache->misses(), 1u);
  EXPECT_TRUE(r.cache->contains("cold"));  // learned from the response
}

TEST(KvsCache, SecondRequestForLearnedKeyHits) {
  CacheRig r;
  int replies = 0;
  std::vector<net::NodeId> reply_srcs;
  r.client.listen(9000, [&](const ReceivedMessage& m) {
    ++replies;
    reply_srcs.push_back(m.src);
  });
  auto ask = [&] {
    core::MessageOptions opts;
    opts.src_port = 9000;
    opts.dst_port = 80;
    opts.app = net::AppData{"warm", ""};
    r.client.send_message(r.t.b->id(), 100, std::move(opts));
  };
  ask();
  r.t.sim().run(10_ms);
  ask();
  r.t.sim().run(30_ms);
  EXPECT_EQ(replies, 2);
  EXPECT_EQ(r.backend_requests, 1u);  // second one served from the cache
  ASSERT_EQ(reply_srcs.size(), 2u);
  EXPECT_EQ(reply_srcs[1], r.t.sw->id());
}

TEST(KvsCache, LruEvictsWhenOverCapacity) {
  testing::HostPair t;
  KvsCache cache(*t.sw, {.backend = t.b->id(), .service_port = 80,
                         .capacity_entries = 2});
  cache.put("a", "1", 100);
  cache.put("b", "2", 100);
  cache.put("c", "3", 100);  // evicts "a"
  EXPECT_FALSE(cache.contains("a"));
  EXPECT_TRUE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
  EXPECT_EQ(cache.entries(), 2u);
}

// -------------------------------------------------------- mutation offload

TEST(MutationOffload, CompressesMessageInFlight) {
  testing::HostPair t;
  MtpEndpoint src(*t.a, {});
  MtpEndpoint dst(*t.b, {});
  auto offload = std::make_shared<MutationOffload>(
      *t.sw, MutationOffload::Config{.match_port = 7000});
  t.sw->add_ingress(offload);

  std::optional<ReceivedMessage> got;
  dst.listen(7000, [&](const ReceivedMessage& m) { got = m; });
  bool sender_done = false;
  src.send_message(t.b->id(), 100'000, {.dst_port = 7000},
                   [&](proto::MsgId, SimTime) { sender_done = true; });
  t.sim().run(50_ms);
  // Sender completed against the offload; receiver got the compressed copy.
  EXPECT_TRUE(sender_done);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->bytes, 50'000);
  EXPECT_EQ(got->src, t.sw->id());
  EXPECT_EQ(offload->messages_mutated(), 1u);
  EXPECT_EQ(offload->bytes_in(), 100'000);
  EXPECT_EQ(offload->bytes_out(), 50'000);
}

TEST(MutationOffload, ExpandingTransformAlsoWorks) {
  testing::HostPair t;
  MtpEndpoint src(*t.a, {});
  MtpEndpoint dst(*t.b, {});
  auto offload = std::make_shared<MutationOffload>(
      *t.sw, MutationOffload::Config{.match_port = 7000},
      [](const DeviceMessage& m) { return m.bytes * 3; });  // serialization blowup
  t.sw->add_ingress(offload);
  std::optional<ReceivedMessage> got;
  dst.listen(7000, [&](const ReceivedMessage& m) { got = m; });
  src.send_message(t.b->id(), 10'000, {.dst_port = 7000});
  t.sim().run(50_ms);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->bytes, 30'000);
}

TEST(MutationOffload, OversizedMessagePassesThroughUntouched) {
  testing::HostPair t;
  MtpEndpoint src(*t.a, {});
  MtpEndpoint dst(*t.b, {});
  MutationOffload::Config cfg{.match_port = 7000};
  cfg.receiver.max_message_bytes = 50'000;  // budget smaller than the message
  auto offload = std::make_shared<MutationOffload>(*t.sw, cfg);
  t.sw->add_ingress(offload);
  std::optional<ReceivedMessage> got;
  dst.listen(7000, [&](const ReceivedMessage& m) { got = m; });
  src.send_message(t.b->id(), 200'000, {.dst_port = 7000});
  t.sim().run(50_ms);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->bytes, 200'000);       // unmodified
  EXPECT_EQ(got->src, t.a->id());       // straight from the sender
  EXPECT_EQ(offload->messages_mutated(), 0u);
}

// ------------------------------------------------------------------ l7 lb

TEST(L7LoadBalancer, SpreadsRequestsAcrossReplicas) {
  net::Network net;
  net::Host* client = net.add_host("client");
  net::Switch* sw = net.add_switch("lb");
  net::Host* r1 = net.add_host("r1");
  net::Host* r2 = net.add_host("r2");
  net.connect(*client, *sw, Bandwidth::gbps(100), 1_us);
  net.connect(*sw, *r1, Bandwidth::gbps(100), 1_us);
  net.connect(*sw, *r2, Bandwidth::gbps(100), 1_us);
  sw->add_route(client->id(), 0);
  sw->add_route(r1->id(), 1);
  sw->add_route(r2->id(), 2);
  const net::NodeId virtual_id = 1000;
  sw->add_ingress(std::make_shared<L7LoadBalancer>(L7LoadBalancer::Config{
      .virtual_service = virtual_id, .replicas = {r1->id(), r2->id()}}));

  MtpEndpoint c(*client, {});
  MtpEndpoint e1(*r1, {});
  MtpEndpoint e2(*r2, {});
  int n1 = 0, n2 = 0;
  e1.listen(80, [&](const ReceivedMessage&) { ++n1; });
  e2.listen(80, [&](const ReceivedMessage&) { ++n2; });
  int done = 0;
  for (int i = 0; i < 20; ++i) {
    c.send_message(virtual_id, 5000, {.dst_port = 80},
                   [&](proto::MsgId, SimTime) { ++done; });
  }
  net.simulator().run(50_ms);
  EXPECT_EQ(n1 + n2, 20);
  EXPECT_EQ(done, 20);  // replica ACKs complete the client's messages
  EXPECT_GT(n1, 5);     // both replicas participate
  EXPECT_GT(n2, 5);
}

// --------------------------------------------------------- trimming + mtp

TEST(TrimmingNdp, NacksTriggerFastRetransmitWithoutTimeouts) {
  // Bottleneck with a tiny trimming queue: overload trims instead of drops,
  // NACKs come back in ~1 RTT, and the transfer completes quickly.
  net::Network net;
  net::Host* a = net.add_host("a");
  net::Host* b = net.add_host("b");
  net::Switch* sw = net.add_switch("sw");
  net.connect(*a, *sw, Bandwidth::gbps(100), 1_us, {.capacity_pkts = 1024});
  net.connect_simplex(*sw, *b, Bandwidth::gbps(10), 1_us,
                      std::make_unique<TrimmingQueue>(
                          TrimmingQueue::Config{.capacity_pkts = 16}));
  net.connect_simplex(*b, *sw, Bandwidth::gbps(10), 1_us,
                      std::make_unique<net::DropTailQueue>());
  sw->add_route(a->id(), 0);
  sw->add_route(b->id(), 1);

  MtpEndpoint src(*a, {});
  MtpEndpoint dst(*b, {});
  std::int64_t got = 0;
  dst.listen(80, [&](const ReceivedMessage& m) { got += m.bytes; });
  src.send_message(b->id(), 300'000, {.dst_port = 80});
  net.simulator().run(100_ms);
  EXPECT_EQ(got, 300'000);
  EXPECT_GT(src.pkts_retransmitted(), 0u);
}

// ------------------------------------------------------------- bulk blobs

TEST(BulkChannel, BlobDeliveredAsIndependentMessages) {
  testing::HostPair t;
  MtpEndpoint src(*t.a, {});
  MtpEndpoint dst(*t.b, {});
  std::int64_t blob_bytes = 0;
  int blobs = 0;
  core::BulkReceiver rx(dst, 5000,
                        [&](net::NodeId, std::uint64_t, std::int64_t bytes, SimTime) {
                          ++blobs;
                          blob_bytes = bytes;
                        });
  core::BulkSender tx(src, t.b->id(), 5000);
  bool done = false;
  tx.send_blob(250'000, [&](std::uint64_t, SimTime) { done = true; });
  t.sim().run(100_ms);
  EXPECT_EQ(blobs, 1);
  EXPECT_EQ(blob_bytes, 250'000);
  EXPECT_TRUE(done);
}

TEST(BulkChannel, SurvivesLossAndSpraying) {
  // Two parallel paths with per-packet spraying and small queues: chunks
  // arrive reordered and some are dropped; the blob still completes.
  net::Network net;
  net::Host* a = net.add_host("a");
  net::Host* b = net.add_host("b");
  net::Switch* sw = net.add_switch("sw");
  net.connect(*a, *sw, Bandwidth::gbps(100), 1_us, {.capacity_pkts = 64});
  net.connect(*sw, *b, Bandwidth::gbps(10), 1_us, {.capacity_pkts = 16});
  net.connect(*sw, *b, Bandwidth::gbps(10), 2_us, {.capacity_pkts = 16});
  sw->add_route(a->id(), 0);
  sw->add_route(b->id(), 1);
  sw->add_route(b->id(), 2);
  sw->set_policy(std::make_unique<net::SprayPolicy>());

  MtpEndpoint src(*a, {});
  MtpEndpoint dst(*b, {});
  int blobs = 0;
  core::BulkReceiver rx(dst, 5000,
                        [&](net::NodeId, std::uint64_t, std::int64_t, SimTime) { ++blobs; });
  core::BulkSender tx(src, b->id(), 5000);
  tx.send_blob(500'000);
  net.simulator().run(200_ms);
  EXPECT_EQ(blobs, 1);
}

}  // namespace
}  // namespace mtp::innetwork
