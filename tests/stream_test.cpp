// Tests for mtp::stream — reliable ordered streams over MTP messages.
//
//   - GF(256) field axioms and encode/decode round trips for every k <= 8,
//     r <= 3 and every erasure pattern of <= r data segments (MDS property).
//   - Reassembly fuzz: a crafted, seeded schedule of reordered / duplicated /
//     dropped / malformed segment messages against an in-memory oracle.
//   - End-to-end transfers over Gilbert-Elliott bursty loss: exactly-once,
//     in-order, content-verified delivery; FEC repairs beat the ARQ stall.
//   - Adaptive redundancy ramping up under loss and decaying to zero clean.
//   - Scenario integration (stream_workload) and 12-seed sharded chaos runs
//     (GE loss + link flaps) asserting serial-vs-sharded digest equality.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "helpers.hpp"
#include "mtp/stream/fec.hpp"
#include "mtp/stream/stream.hpp"
#include "scenario/scenario.hpp"

namespace mtp::stream {
namespace {

using namespace mtp::sim::literals;
using mtp::testing::HostPair;
using sim::Bandwidth;
using sim::SimTime;

std::string random_bytes(std::mt19937_64& rng, std::size_t n) {
  std::string s(n, '\0');
  for (auto& c : s) c = static_cast<char>(rng() & 0xff);
  return s;
}

// ------------------------------------------------------------------ GF(256)

TEST(Gf256, FieldAxiomsHoldOnRandomDraws) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng() & 0xff);
    const auto b = static_cast<std::uint8_t>(rng() & 0xff);
    const auto c = static_cast<std::uint8_t>(rng() & 0xff);
    EXPECT_EQ(fec::gf_mul(a, b), fec::gf_mul(b, a));
    EXPECT_EQ(fec::gf_mul(fec::gf_mul(a, b), c), fec::gf_mul(a, fec::gf_mul(b, c)));
    // Distributivity over the field's addition (XOR).
    EXPECT_EQ(fec::gf_mul(a, b ^ c), fec::gf_mul(a, b) ^ fec::gf_mul(a, c));
    EXPECT_EQ(fec::gf_mul(a, 1), a);
    if (a != 0) {
      EXPECT_EQ(fec::gf_mul(a, fec::gf_inv(a)), 1);
    }
  }
}

TEST(Gf256, ParityRowZeroIsPlainXor) {
  for (unsigned i = 0; i < fec::kMaxK; ++i) EXPECT_EQ(fec::coeff(0, i), 1);
}

// Every k <= kMaxK, r <= kMaxR, every erasure pattern of t <= r data
// segments, recovered from every t-subset of the r parities: the MDS
// guarantee a Vandermonde alpha^(j*i) matrix does NOT give at r = 3.
TEST(Gf256, EncodeDecodeRoundTripsAllErasurePatterns) {
  std::mt19937_64 rng(11);
  for (unsigned k = 1; k <= fec::kMaxK; ++k) {
    for (unsigned r = 1; r <= fec::kMaxR; ++r) {
      std::vector<std::string> data(k);
      for (auto& d : data) d = random_bytes(rng, 1 + (rng() % 40));  // ragged
      const auto parities = fec::encode(data, r);
      ASSERT_EQ(parities.size(), r);
      for (unsigned erased = 1; erased < (1u << k); ++erased) {
        const auto t = static_cast<unsigned>(__builtin_popcount(erased));
        if (t > r) continue;
        for (unsigned pset = 0; pset < (1u << r); ++pset) {
          if (static_cast<unsigned>(__builtin_popcount(pset)) != t) continue;
          std::vector<std::optional<std::string>> segs(k);
          for (unsigned i = 0; i < k; ++i) {
            if (!(erased & (1u << i))) segs[i] = data[i];
          }
          std::vector<std::pair<std::uint8_t, std::string>> avail;
          for (unsigned j = 0; j < r; ++j) {
            if (pset & (1u << j)) avail.emplace_back(j, parities[j]);
          }
          ASSERT_TRUE(fec::decode(segs, avail)) << "k=" << k << " r=" << r;
          for (unsigned i = 0; i < k; ++i) {
            ASSERT_TRUE(segs[i].has_value());
            // Recovered payloads are padded to the parity width; the real
            // bytes must match and the padding must be zero.
            ASSERT_GE(segs[i]->size(), data[i].size());
            EXPECT_EQ(segs[i]->substr(0, data[i].size()), data[i]);
            for (std::size_t p = data[i].size(); p < segs[i]->size(); ++p) {
              EXPECT_EQ((*segs[i])[p], '\0');
            }
          }
        }
      }
    }
  }
}

TEST(Gf256, DecodeRefusesMoreErasuresThanParities) {
  std::mt19937_64 rng(3);
  std::vector<std::string> data(4);
  for (auto& d : data) d = random_bytes(rng, 16);
  const auto parities = fec::encode(data, 1);
  std::vector<std::optional<std::string>> segs(4);
  segs[0] = data[0];
  segs[3] = data[3];  // 1 and 2 erased, only one parity
  EXPECT_FALSE(fec::decode(segs, {{0, parities[0]}}));
}

TEST(Gf256, SizedOnlySegmentsCodeToEmptyParity) {
  const auto parities = fec::encode({"", "", "", ""}, 2);
  ASSERT_EQ(parities.size(), 2u);
  EXPECT_TRUE(parities[0].empty());
  EXPECT_TRUE(parities[1].empty());
}

// ------------------------------------------------------- reassembly fuzzing

// Crafted segment schedule straight into a receiving mux: duplicates,
// heavy reordering, per-group drops repaired by parity, malformed headers,
// and post-completion stragglers, all verified against an in-memory oracle.
TEST(StreamReassembly, FuzzReorderDupDropVsOracle) {
  constexpr std::uint32_t kSegs = 240;
  constexpr unsigned kGroup = 4;
  std::mt19937_64 rng(0xfeedULL);

  HostPair t;
  core::MtpEndpoint src(*t.a, {});
  core::MtpEndpoint dst(*t.b, {});
  src.listen(7000, [](const core::ReceivedMessage&) {});  // feedback sink
  StreamMux rx(dst, 80, {});

  std::vector<std::string> oracle(kSegs);
  std::uint64_t oracle_bytes = 0;
  for (auto& s : oracle) {
    s = random_bytes(rng, 1 + (rng() % 32));
    oracle_bytes += s.size();
  }

  struct Send {
    SimTime at;
    proto::StreamHeader sh;
    std::string content;
    std::int64_t bytes;
  };
  std::vector<Send> plan;
  std::uint64_t expected_repairs = 0;
  std::uint64_t planned_dups = 0;
  std::uint64_t offset = 0;
  const auto jitter = [&] { return SimTime::nanoseconds(static_cast<std::int64_t>(rng() % 50'000)); };

  for (std::uint32_t base = 0; base < kSegs; base += kGroup) {
    // Per group: maybe drop one member entirely (parity must rebuild it).
    const bool drop = rng() % 4 == 0;
    const std::uint32_t dropped = base + rng() % kGroup;
    std::vector<std::string> group(oracle.begin() + base, oracle.begin() + base + kGroup);
    std::vector<std::uint32_t> lens;
    for (const auto& g : group) lens.push_back(static_cast<std::uint32_t>(g.size()));
    for (std::uint32_t s = base; s < base + kGroup; ++s) {
      const int copies = (drop && s == dropped) ? 0 : (rng() % 10 < 3 ? 2 : 1);
      planned_dups += copies > 1 ? copies - 1 : 0;
      for (int c = 0; c < copies; ++c) {
        proto::StreamHeader sh;
        sh.stream_id = 1;
        sh.kind = proto::StreamKind::kData;
        sh.seq = s;
        sh.offset = offset;
        plan.push_back({jitter(), sh, oracle[s], static_cast<std::int64_t>(oracle[s].size())});
      }
      offset += oracle[s].size();
    }
    if (drop) ++expected_repairs;
    // One XOR parity per group, always sent.
    proto::StreamHeader ph;
    ph.stream_id = 1;
    ph.kind = proto::StreamKind::kParity;
    ph.seq = base;
    ph.fec_k = kGroup;
    ph.fec_r = 1;
    ph.fec_index = 0;
    ph.seg_lens = lens;
    auto parity = fec::encode(group, 1);
    plan.push_back({jitter(), ph, std::move(parity[0]),
                    static_cast<std::int64_t>(*std::max_element(lens.begin(), lens.end()))});
  }
  // Malformed inputs the receiver must shrug off: a segment far beyond the
  // reorder window and a parity header with k = 0.
  {
    proto::StreamHeader far;
    far.stream_id = 1;
    far.kind = proto::StreamKind::kData;
    far.seq = kSegs + 100'000;
    plan.push_back({jitter(), far, "x", 1});
    proto::StreamHeader bad;
    bad.stream_id = 1;
    bad.kind = proto::StreamKind::kParity;
    bad.seq = 0;
    plan.push_back({jitter(), bad, "", 1});
  }
  std::sort(plan.begin(), plan.end(), [](const Send& a, const Send& b) { return a.at < b.at; });

  std::vector<std::uint32_t> delivered_seqs;
  std::string delivered_bytes;
  rx.on_segment = [&](net::NodeId, std::uint32_t, std::uint32_t seq, std::uint32_t,
                      const std::string& content, bool) {
    delivered_seqs.push_back(seq);
    delivered_bytes += content;
  };
  int completions = 0;
  rx.on_stream_complete = [&](net::NodeId, std::uint32_t) { ++completions; };

  const auto send_one = [&](const Send& p) {
    core::MessageOptions o;
    o.src_port = 7000;
    o.dst_port = 80;
    if (!p.content.empty()) o.app = net::AppData{{}, p.content};
    o.stream = p.sh;
    src.send_message(t.b->id(), std::max<std::int64_t>(1, p.bytes), std::move(o), {});
  };
  for (const auto& p : plan) {
    t.sim().run(p.at);
    send_one(p);
  }
  // FIN after everything else.
  t.sim().run(1_ms);
  proto::StreamHeader fin;
  fin.stream_id = 1;
  fin.kind = proto::StreamKind::kData;
  fin.seq = kSegs;
  fin.offset = offset;
  fin.flags = proto::kStreamFin;
  send_one({0_us, fin, "", 1});
  t.sim().run(100_ms);

  std::string oracle_bytes_cat;
  for (const auto& s : oracle) oracle_bytes_cat += s;
  ASSERT_EQ(delivered_seqs.size(), kSegs);
  for (std::uint32_t i = 0; i < kSegs; ++i) EXPECT_EQ(delivered_seqs[i], i);
  EXPECT_EQ(delivered_bytes, oracle_bytes_cat);
  EXPECT_EQ(completions, 1);

  const auto st = rx.stats();
  EXPECT_EQ(st.segments_delivered, kSegs);
  EXPECT_EQ(st.bytes_delivered, oracle_bytes);
  // Every never-sent segment must have been rebuilt from parity; the mux may
  // additionally repair opportunistically when parity outruns a reordered
  // original (which then lands as a counted duplicate).
  EXPECT_GE(st.fec_repairs, expected_repairs);
  EXPECT_GE(st.dup_segments, planned_dups);
  EXPECT_EQ(st.reorder_drops, 1u);  // the far-out-of-window probe
  EXPECT_EQ(st.streams_completed, 1u);

  // A straggler after completion hits the tombstone: re-acked, not re-run.
  const auto dups_before = rx.stats().dup_segments;
  proto::StreamHeader old;
  old.stream_id = 1;
  old.kind = proto::StreamKind::kData;
  old.seq = 3;
  send_one({0_us, old, oracle[3], static_cast<std::int64_t>(oracle[3].size())});
  t.sim().run(200_ms);
  EXPECT_EQ(rx.stats().dup_segments, dups_before + 1);
  EXPECT_EQ(rx.stats().streams_completed, 1u);
  EXPECT_EQ(delivered_seqs.size(), kSegs);  // nothing re-delivered
  EXPECT_EQ(t.sim().pending_events(), 0u);
}

// --------------------------------------------- end-to-end over bursty loss

struct LossyPair {
  HostPair t{Bandwidth::gbps(10)};
  core::MtpEndpoint a_ep{*t.a, {}};
  core::MtpEndpoint b_ep{*t.b, {}};
  fault::FaultInjector inj{t.sim(), 0};

  LossyPair(std::uint64_t seed, fault::GilbertElliott::Config ge)
      : inj(t.sim(), seed) {
    inj.impair_link(*t.a_to_sw, ge);  // data direction; feedback path clean
  }
};

TEST(StreamTransfer, OrderedExactlyOnceContentVerifiedUnderBurstyLoss) {
  LossyPair lp(41, {.p_good_to_bad = 0.02, .p_bad_to_good = 0.3, .bad_loss = 0.5});
  StreamConfig cfg;
  cfg.fec_k = 4;
  cfg.fec_r = 1;
  StreamMux tx(lp.a_ep, 80, cfg);
  StreamMux rx(lp.b_ep, 80, cfg);

  std::mt19937_64 rng(5);
  std::string oracle;
  Stream& s = tx.open(lp.t.b->id(), 80);
  std::string got;
  std::vector<std::uint32_t> seqs;
  rx.on_segment = [&](net::NodeId, std::uint32_t, std::uint32_t seq, std::uint32_t,
                      const std::string& content, bool) {
    seqs.push_back(seq);
    got += content;
  };
  bool complete = false;
  s.on_complete = [&] { complete = true; };
  s.on_error = [&](StreamError) { FAIL() << "stream error"; };

  for (int rec = 0; rec < 60; ++rec) {
    const auto content = random_bytes(rng, 1 + (rng() % 5000));
    oracle += content;
    s.write(static_cast<std::int64_t>(content.size()), content);
  }
  s.finish();
  lp.t.sim().run(2'000_ms);

  EXPECT_TRUE(complete);
  EXPECT_EQ(got, oracle);
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i);  // exactly once, in order
  const auto st = rx.stats();
  EXPECT_GT(st.fec_repairs, 0u);          // bursts actually hit and FEC repaired
  // gap_events is exported as a counter: gaps observed by the (now completed
  // and erased) rx state must be retained, not forgotten with it.
  EXPECT_GT(st.gap_events, 0u);
  EXPECT_EQ(rx.stats().streams_completed, 1u);
  EXPECT_EQ(tx.stats().streams_completed, 1u);
  EXPECT_EQ(lp.t.sim().pending_events(), 0u);
}

// FEC repairs recover a lost segment from parity already in flight; ARQ-only
// waits out the retransmission timer. Same workload, same loss process
// parameters: the coded run must both repair (counter) and finish sooner.
TEST(StreamTransfer, FecFinishesBeforeArqOnlyUnderBurstyLoss) {
  const fault::GilbertElliott::Config ge{
      .p_good_to_bad = 0.03, .p_bad_to_good = 0.25, .bad_loss = 0.6};
  const auto run_mode = [&](std::uint8_t r, std::uint64_t* repairs) {
    LossyPair lp(77, ge);
    StreamConfig cfg;
    cfg.fec_k = 4;
    cfg.fec_r = r;
    StreamMux tx(lp.a_ep, 80, cfg);
    StreamMux rx(lp.b_ep, 80, cfg);
    Stream& s = tx.open(lp.t.b->id(), 80);
    SimTime done = SimTime::max();
    s.on_complete = [&] { done = lp.t.sim().now(); };
    s.on_error = [&](StreamError) { FAIL() << "stream error"; };
    for (int rec = 0; rec < 100; ++rec) s.write(4000);
    s.finish();
    lp.t.sim().run(5'000_ms);
    if (repairs) *repairs = rx.stats().fec_repairs;
    EXPECT_EQ(tx.stats().streams_completed, 1u);
    return done;
  };
  std::uint64_t repairs = 0;
  const SimTime fec_done = run_mode(1, &repairs);
  const SimTime arq_done = run_mode(0, nullptr);
  EXPECT_GT(repairs, 0u);
  EXPECT_LT(fec_done, arq_done);
}

// ---------------------------------------------------- adaptive redundancy

TEST(StreamAdaptive, RedundancyRampsUpUnderLossThenDecaysToZeroClean) {
  LossyPair lp(23, {.p_good_to_bad = 0.05, .p_bad_to_good = 0.2, .bad_loss = 0.6});
  StreamConfig cfg;
  cfg.fec_k = 4;
  cfg.fec_r = 0;  // starts uncoded: only the controller can turn parity on
  cfg.adaptive_fec = true;
  StreamMux tx(lp.a_ep, 80, cfg);
  StreamMux rx(lp.b_ep, 80, cfg);
  Stream& s = tx.open(lp.t.b->id(), 80);
  s.on_error = [&](StreamError) { FAIL() << "stream error"; };

  // Lossy phase: write in paced batches so feedback rounds interleave.
  for (int batch = 0; batch < 40; ++batch) {
    s.write(8000);
    lp.t.sim().run(lp.t.sim().now() + 100_us);
  }
  lp.t.sim().run(lp.t.sim().now() + 50_ms);
  EXPECT_GT(s.parity_sent(), 0u) << "controller never enabled redundancy under loss";
  EXPECT_GT(s.loss_ewma(), 0.0);

  // Clean phase: loss stops, EWMA decays, redundancy returns to zero.
  lp.inj.clear_impairment(*lp.t.a_to_sw);
  for (int batch = 0; batch < 40; ++batch) {
    s.write(8000);
    lp.t.sim().run(lp.t.sim().now() + 100_us);
  }
  lp.t.sim().run(lp.t.sim().now() + 50_ms);
  EXPECT_EQ(s.active_r(), 0u);
  const auto parity_at_clean = s.parity_sent();
  s.write(8000);
  s.finish();
  lp.t.sim().run(5'000_ms);
  EXPECT_EQ(s.parity_sent(), parity_at_clean);  // no parity on the clean tail
  EXPECT_TRUE(s.complete());
}

// Regression: adaptive feedback can drive r_active_ to zero and back while a
// partial parity group is open (group_flush_delay > feedback cadence).
// Segments submitted in the r == 0 window are not appended to the group, so
// a stale group must be flushed before it goes non-contiguous — otherwise the
// parity advertises base..base+k-1 but encodes different seqs, and a repair
// silently delivers the wrong bytes. Oscillating loss + paced single-segment
// writes + byte-exact oracle verification across seeds exercises exactly that
// window.
TEST(StreamAdaptive, OscillatingLossNeverCorruptsRepairedContent) {
  for (const std::uint64_t seed : {3ull, 9ull, 21ull, 33ull, 51ull, 64ull}) {
    LossyPair lp(seed, {.p_good_to_bad = 0.08, .p_bad_to_good = 0.2, .bad_loss = 0.7});
    StreamConfig cfg;
    cfg.fec_k = 4;
    cfg.fec_r = 0;  // adaptive controller owns r entirely
    cfg.adaptive_fec = true;
    cfg.fec_r_max = 2;
    cfg.fec_loss_decay = 0.3;   // fast swings: r collapses and recovers quickly
    cfg.fec_loss_per_r = 0.05;
    cfg.group_flush_delay = SimTime::microseconds(600);  // groups outlive feedback rounds
    StreamMux tx(lp.a_ep, 80, cfg);
    StreamMux rx(lp.b_ep, 80, cfg);

    std::mt19937_64 rng(seed * 77 + 1);
    Stream& s = tx.open(lp.t.b->id(), 80);
    std::string oracle, got;
    std::vector<std::uint32_t> seqs;
    rx.on_segment = [&](net::NodeId, std::uint32_t, std::uint32_t seq, std::uint32_t,
                        const std::string& content, bool) {
      seqs.push_back(seq);
      got += content;
    };
    bool complete = false;
    s.on_complete = [&] { complete = true; };
    s.on_error = [&](StreamError) { FAIL() << "stream error, seed " << seed; };

    bool lossy = true;
    for (int rec = 0; rec < 300; ++rec) {
      const auto content = random_bytes(rng, 600 + (rng() % 400));  // one segment each
      oracle += content;
      s.write(static_cast<std::int64_t>(content.size()), content);
      lp.t.sim().run(lp.t.sim().now() + 70_us);
      if (rec % 7 == 6) {  // toggle roughly every 500 us
        if (lossy) {
          lp.inj.clear_impairment(*lp.t.a_to_sw);
        } else {
          lp.inj.impair_link(*lp.t.a_to_sw,
                             {.p_good_to_bad = 0.08, .p_bad_to_good = 0.2, .bad_loss = 0.7});
        }
        lossy = !lossy;
      }
    }
    s.finish();
    lp.t.sim().run(10'000_ms);

    ASSERT_TRUE(complete) << "seed " << seed;
    ASSERT_EQ(got, oracle) << "seed " << seed;  // byte-exact: no corrupt repair
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      ASSERT_EQ(seqs[i], i) << "seed " << seed;
    }
    EXPECT_EQ(lp.t.sim().pending_events(), 0u);
  }
}

// ------------------------------------------------------ scenario plumbing

TEST(StreamScenario, WorkloadRecordsDeliverOnceAndLandInFct) {
  workload::ArrivalSchedule sched;
  for (int rec = 0; rec < 25; ++rec) {
    for (std::uint32_t src = 0; src < 4; ++src) {
      sched.add(SimTime::microseconds(10 + rec * 20), src, 2000);
    }
  }
  auto s = scenario::ScenarioBuilder()
               .seed(3)
               .topology(scenario::topo::incast(4))
               .transport("mtp")
               .workload(std::move(sched))
               .stream_workload({.fec_k = 4, .fec_r = 1})
               .build();
  s->run();
  EXPECT_EQ(s->fct().count(), 100u);
  const auto st = s->stream_stats();
  EXPECT_EQ(st.bytes_delivered, 100u * 2000u);
  EXPECT_EQ(st.streams_completed, 8u);  // 4 sender sides + 4 receiver sides
  EXPECT_EQ(st.streams_failed, 0u);
  EXPECT_GT(st.parity_sent, 0u);
  EXPECT_NE(s->stream_digest(), 0u);
}

TEST(StreamScenario, RequiresMtpTransport) {
  EXPECT_THROW(scenario::ScenarioBuilder()
                   .topology(scenario::topo::incast(2))
                   .transport("tcp")
                   .stream_workload({})
                   .build(),
               std::logic_error);
}

// --------------------------------------------------------- sharded chaos

// 12 seeds x shard counts {1, 2, 4}: Gilbert-Elliott loss on one of the two
// paths plus a link flap on the other, adaptive FEC on. Every shard count
// must deliver every record exactly once, in order, with bit-identical
// stream digests — the repo-wide determinism contract.
TEST(StreamSharded, ChaosLossAndFlapsDigestsMatchAcrossShardCounts) {
  constexpr std::uint32_t kSenders = 4;
  constexpr int kRecords = 16;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    std::uint64_t digest1 = 0;
    std::size_t fct1 = 0;
    for (const unsigned shards : {1u, 2u, 4u}) {
      std::mt19937_64 rng(seed);
      struct Rec {
        SimTime at;
        std::uint32_t src, bytes;
      };
      std::vector<Rec> recs;
      for (int rec = 0; rec < kRecords; ++rec) {
        for (std::uint32_t src = 0; src < kSenders; ++src) {
          recs.push_back({SimTime::microseconds(5 + rec * 40 + static_cast<int>(rng() % 17)),
                          src, 1000 + static_cast<std::uint32_t>(rng() % 4000)});
        }
      }
      std::stable_sort(recs.begin(), recs.end(),
                       [](const Rec& a, const Rec& b) { return a.at < b.at; });
      workload::ArrivalSchedule sched;
      for (const auto& r : recs) sched.add(r.at, r.src, r.bytes);
      auto s = scenario::ScenarioBuilder()
                   .seed(seed)
                   .shards(shards)
                   .topology(scenario::topo::dual_path(kSenders))
                   .forwarding(scenario::Forwarding::kEcmp)
                   .transport("mtp")
                   .workload(std::move(sched))
                   .stream_workload({.fec_k = 4,
                                     .fec_r = 1,
                                     .adaptive_fec = true,
                                     .fec_r_max = 2})
                   .flap(1, 200_us, 2_ms)  // slow path flaps mid-run
                   .build();
      fault::FaultInjector ge(s->simulator(), seed * 1000 + 7);
      ge.impair_link(*s->topo().paths[0],
                     {.p_good_to_bad = 0.01, .p_bad_to_good = 0.25, .bad_loss = 0.4});
      s->run();

      const auto st = s->stream_stats();
      ASSERT_EQ(st.streams_failed, 0u) << "seed " << seed << " shards " << shards;
      ASSERT_EQ(st.streams_completed, 2u * kSenders)
          << "seed " << seed << " shards " << shards;
      ASSERT_EQ(s->fct().count(), static_cast<std::size_t>(kRecords) * kSenders)
          << "seed " << seed << " shards " << shards;
      const std::uint64_t digest = s->stream_digest();
      if (shards == 1) {
        digest1 = digest;
        fct1 = s->fct().count();
      } else {
        EXPECT_EQ(digest, digest1) << "seed " << seed << " shards " << shards;
        EXPECT_EQ(s->fct().count(), fct1) << "seed " << seed << " shards " << shards;
      }
    }
  }
}

}  // namespace
}  // namespace mtp::stream
