// Property-style parameterized sweeps: delivery invariants must hold across
// MSS choices, queue depths, coalescing depths, scheduling policies, message
// mixes and seeds — the knobs a deployment would actually turn.
#include <gtest/gtest.h>

#include <tuple>

#include "helpers.hpp"
#include "mtp/bulk.hpp"
#include "mtp/cc_algorithm.hpp"
#include "mtp/endpoint.hpp"
#include "workload/workload.hpp"

namespace mtp::core {
namespace {

using namespace mtp::sim::literals;
using mtp::testing::HostPair;
using sim::Bandwidth;
using sim::SimTime;

// ---- Invariant: exact delivery for any MSS and message size combination.

class MssSweep : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::int64_t>> {};

TEST_P(MssSweep, ExactDeliveryAndCompletion) {
  const auto [mss, bytes] = GetParam();
  HostPair t;
  MtpConfig cfg;
  cfg.mss = mss;
  cfg.cc.mss = mss;
  MtpEndpoint src(*t.a, cfg);
  MtpEndpoint dst(*t.b, cfg);
  std::int64_t got = 0;
  bool done = false;
  dst.listen(80, [&](const ReceivedMessage& m) { got += m.bytes; });
  src.send_message(t.b->id(), bytes, {.dst_port = 80},
                   [&](proto::MsgId, SimTime) { done = true; });
  t.sim().run(200_ms);
  EXPECT_EQ(got, bytes);
  EXPECT_TRUE(done);
  EXPECT_EQ(src.outstanding_messages(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MssSweep,
    ::testing::Combine(::testing::Values(100u, 536u, 1000u, 1500u, 9000u),
                       ::testing::Values<std::int64_t>(1, 1499, 100'000)));

// ---- Invariant: delivery survives any queue depth (loss regime sweep).

class QueueDepthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QueueDepthSweep, LossyPathStillDeliversExactly) {
  HostPair t(Bandwidth::gbps(100), 1_us,
             {.capacity_pkts = GetParam(), .ecn_threshold_pkts = 0});
  MtpEndpoint src(*t.a, {});
  MtpEndpoint dst(*t.b, {});
  std::int64_t got = 0;
  dst.listen(80, [&](const ReceivedMessage& m) { got += m.bytes; });
  for (int i = 0; i < 5; ++i) {
    src.send_message(t.b->id(), 100'000, {.dst_port = 80});
  }
  t.sim().run(500_ms);
  EXPECT_EQ(got, 500'000) << "queue depth " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Depths, QueueDepthSweep,
                         ::testing::Values(2, 4, 8, 16, 64, 512));

// ---- Invariant: ack coalescing depth never affects what is delivered.

class CoalesceSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CoalesceSweep, DeliveryIndependentOfAckBatching) {
  HostPair t(Bandwidth::gbps(100), 1_us, {.capacity_pkts = 32});
  MtpConfig cfg;
  cfg.ack_coalesce = GetParam();
  MtpEndpoint src(*t.a, cfg);
  MtpEndpoint dst(*t.b, cfg);
  std::int64_t got = 0;
  int msgs = 0;
  dst.listen(80, [&](const ReceivedMessage& m) {
    got += m.bytes;
    ++msgs;
  });
  src.send_message(t.b->id(), 250'000, {.dst_port = 80});
  src.send_message(t.b->id(), 7, {.dst_port = 80});
  t.sim().run(300_ms);
  EXPECT_EQ(got, 250'007);
  EXPECT_EQ(msgs, 2);
}

INSTANTIATE_TEST_SUITE_P(Depths, CoalesceSweep, ::testing::Values(1, 2, 4, 16, 128));

// ---- Invariant: every scheduling policy completes every message.

class SchedulingSweep : public ::testing::TestWithParam<MtpConfig::Scheduling> {};

TEST_P(SchedulingSweep, MixedSizesAllComplete) {
  HostPair t(Bandwidth::gbps(10), 2_us);
  MtpConfig cfg;
  cfg.scheduling = GetParam();
  MtpEndpoint src(*t.a, cfg);
  MtpEndpoint dst(*t.b, cfg);
  int done = 0;
  dst.listen(80, [](const ReceivedMessage&) {});
  sim::Rng rng(77);
  workload::SizeDist sizes = workload::SizeDist::skewed(1'000, 1'000'000);
  for (int i = 0; i < 30; ++i) {
    src.send_message(t.b->id(), sizes.sample(rng),
                     {.priority = static_cast<std::uint8_t>(i % 3), .dst_port = 80},
                     [&](proto::MsgId, SimTime) { ++done; });
  }
  t.sim().run(500_ms);
  EXPECT_EQ(done, 30);
}

INSTANTIATE_TEST_SUITE_P(Policies, SchedulingSweep,
                         ::testing::Values(MtpConfig::Scheduling::kPriorityFifo,
                                           MtpConfig::Scheduling::kSrpt));

// ---- Invariant: every CC algorithm keeps its window within sane bounds
// under arbitrary interleavings of feedback, acks and losses.

class CcFuzz : public ::testing::TestWithParam<std::tuple<proto::FeedbackType, std::uint64_t>> {};

TEST_P(CcFuzz, WindowAlwaysWithinBounds) {
  const auto [type, seed] = GetParam();
  CcConfig cfg;
  auto cc = make_cc(type, cfg);
  sim::Rng rng(seed);
  for (int i = 0; i < 5000; ++i) {
    const double dice = rng.uniform();
    if (dice < 0.60) {
      proto::Feedback fb;
      fb.type = type;
      switch (type) {
        case proto::FeedbackType::kEcn:
          fb.value = rng.bernoulli(0.3) ? 1 : 0;
          break;
        case proto::FeedbackType::kRate:
          fb.value = static_cast<std::uint64_t>(rng.uniform_int(1'000'000, 100'000'000'000));
          break;
        case proto::FeedbackType::kDelay:
          fb.value = static_cast<std::uint64_t>(rng.uniform_int(0, 1'000'000));
          break;
        default:
          break;
      }
      cc->on_feedback(fb, 1000);
      cc->on_ack(1000, SimTime::microseconds(rng.uniform_int(1, 200)));
    } else if (dice < 0.9) {
      cc->on_ack(static_cast<std::int64_t>(rng.uniform_int(1, 9000)),
                 SimTime::microseconds(rng.uniform_int(1, 200)));
    } else {
      cc->on_loss(rng.bernoulli(0.5) ? LossKind::kTimeout : LossKind::kTrim);
    }
    ASSERT_GE(cc->window_bytes(), static_cast<std::int64_t>(cfg.mss));
    ASSERT_LE(cc->window_bytes(), cfg.max_window_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgoSeeds, CcFuzz,
    ::testing::Combine(::testing::Values(proto::FeedbackType::kEcn,
                                         proto::FeedbackType::kRate,
                                         proto::FeedbackType::kDelay,
                                         proto::FeedbackType::kNone),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

// ---- Invariant: blobs of any size reassemble exactly, across seeds.

class BlobSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BlobSweep, ReassemblesExactly) {
  HostPair t;
  MtpEndpoint src(*t.a, {});
  MtpEndpoint dst(*t.b, {});
  std::int64_t got = 0;
  BulkReceiver rx(dst, 5000,
                  [&](net::NodeId, std::uint64_t, std::int64_t bytes, SimTime) {
                    got = bytes;
                  });
  BulkSender tx(src, t.b->id(), 5000);
  tx.send_blob(GetParam());
  t.sim().run(300_ms);
  EXPECT_EQ(got, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlobSweep,
                         ::testing::Values<std::int64_t>(1, 1000, 1001, 65'536,
                                                         1'000'000));

// ---- Determinism: the same seed gives bit-identical experiment results.

TEST(Determinism, SameSeedSameOutcome) {
  auto run_once = [](std::uint64_t seed) {
    HostPair t(Bandwidth::gbps(10), 2_us, {.capacity_pkts = 16}, seed);
    MtpEndpoint src(*t.a, {});
    MtpEndpoint dst(*t.b, {});
    std::int64_t got = 0;
    dst.listen(80, [&](const ReceivedMessage& m) { got += m.bytes; });
    sim::Rng rng(seed);
    workload::SizeDist sizes = workload::SizeDist::skewed(1'000, 200'000);
    for (int i = 0; i < 10; ++i) {
      src.send_message(t.b->id(), sizes.sample(rng), {.dst_port = 80});
    }
    t.sim().run(100_ms);
    return std::tuple{got, src.pkts_sent(), src.pkts_retransmitted(),
                      t.sim().events_executed()};
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(std::get<1>(run_once(5)), 0u);
}

}  // namespace
}  // namespace mtp::core
