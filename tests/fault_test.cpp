// Tests for mtp::fault — deterministic fault injection — and the recovery
// machinery it exercises: payload checksums, link flap accounting, MTP RTO
// backoff, pathlet exclusion around blackholes, TCP SYN recovery, device
// crash-with-state-wipe, L7 LB health ejection, and RPC retries.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "helpers.hpp"
#include "innetwork/kvs_cache.hpp"
#include "innetwork/l7_lb.hpp"
#include "mtp/endpoint.hpp"
#include "mtp/rpc.hpp"
#include "mtp/stream/stream.hpp"
#include "net/topologies.hpp"
#include "telemetry/trace.hpp"
#include "transport/tcp.hpp"

namespace mtp::fault {
namespace {

using namespace mtp::sim::literals;
using core::MtpEndpoint;
using core::ReceivedMessage;
using mtp::testing::HostPair;
using sim::Bandwidth;
using sim::SimTime;

net::Packet mtp_data_pkt(std::uint32_t pkt_num = 0, std::uint32_t total = 4) {
  net::Packet p;
  p.src = 1;
  p.dst = 2;
  p.payload_bytes = 1000;
  p.header_bytes = 64;
  p.uid = 7;
  proto::MtpHeader h;
  h.msg_id = 42;
  h.pkt_num = pkt_num;
  h.msg_len_pkts = total;
  h.msg_len_bytes = static_cast<std::uint64_t>(total) * 1000;
  h.pkt_len = 1000;
  h.pkt_offset = static_cast<std::uint64_t>(pkt_num) * 1000;
  h.dst_port = 80;
  p.header = h;
  return p;
}

// ------------------------------------------------------- payload checksums

TEST(Checksum, UnstampedPacketAlwaysVerifies) {
  const net::Packet p = mtp_data_pkt();
  EXPECT_EQ(p.payload_fingerprint, 0u);
  EXPECT_TRUE(p.checksum_ok());  // 0 = "no NIC stamped it yet"
}

TEST(Checksum, StampedPacketVerifiesUntilCorrupted) {
  net::Packet p = mtp_data_pkt();
  p.stamp_fingerprint();
  EXPECT_NE(p.payload_fingerprint, 0u);
  EXPECT_TRUE(p.checksum_ok());
  p.corrupt();
  EXPECT_FALSE(p.checksum_ok());
}

TEST(Checksum, SurvivesDestinationRewrite) {
  // An L7 LB rewrites pkt.dst en route; the fingerprint must not cover it,
  // or every load-balanced packet would look corrupted at the replica.
  net::Packet p = mtp_data_pkt();
  p.stamp_fingerprint();
  p.dst = 99;
  EXPECT_TRUE(p.checksum_ok());
}

TEST(Checksum, CoversAppDataPayload) {
  net::Packet p = mtp_data_pkt();
  p.app = net::AppData{"key", "value"};
  p.stamp_fingerprint();
  EXPECT_TRUE(p.checksum_ok());
  p.app->value = "evil!";
  EXPECT_FALSE(p.checksum_ok());
}

TEST(Checksum, LinkStampsOnFirstHop) {
  HostPair t;
  std::optional<std::uint64_t> fp;
  MtpEndpoint a(*t.a, {});
  MtpEndpoint b(*t.b, {});
  b.listen(80, [](const ReceivedMessage&) {});
  a.send_message(t.b->id(), 2'000, {.dst_port = 80});
  t.sim().run(1_ms);
  EXPECT_EQ(b.msgs_delivered(), 1u);
  EXPECT_EQ(b.checksum_drops(), 0u);  // clean path: stamp always verifies
  (void)fp;
}

// ------------------------------------------------- Gilbert-Elliott model

TEST(GilbertElliott, SameSeedSameDecisionStream) {
  const GilbertElliott::Config cfg{.p_good_to_bad = 0.05,
                                   .p_bad_to_good = 0.2,
                                   .bad_loss = 0.3,
                                   .bad_corrupt = 0.3};
  GilbertElliott a(cfg), b(cfg);
  sim::Rng ra(77), rb(77);
  int faults = 0;
  for (int i = 0; i < 20'000; ++i) {
    const net::FaultAction fa = a.step(ra);
    ASSERT_EQ(fa, b.step(rb)) << "diverged at step " << i;
    if (fa != net::FaultAction::kNone) ++faults;
  }
  EXPECT_GT(faults, 0);  // the bad state actually bites
}

TEST(GilbertElliott, GoodStateIsCleanByDefault) {
  GilbertElliott ge({.p_good_to_bad = 0.0});
  sim::Rng rng(1);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_EQ(ge.step(rng), net::FaultAction::kNone);
  }
}

// --------------------------------------------------------- link flapping

TEST(FaultInjector, ScheduledFlapExecutesBothEdges) {
  HostPair t;
  FaultInjector inj(t.sim(), 1);
  inj.flap_link(*t.sw_to_b, 100_us, 200_us);
  EXPECT_EQ(inj.flaps_scheduled(), 1u);

  t.sim().schedule_at(150_us, [&] { EXPECT_FALSE(t.sw_to_b->is_up()); });
  t.sim().schedule_at(350_us, [&] { EXPECT_TRUE(t.sw_to_b->is_up()); });
  t.sim().run(1_ms);
  EXPECT_EQ(inj.flaps_executed(), 2u);  // down + up
  EXPECT_EQ(t.sw_to_b->stats().flaps, 1u);
}

TEST(FaultInjector, DownLinkDiscardsQueueAndCountsEverySend) {
  // Slow egress builds a queue at the switch; the flap must discard it and
  // count both the discards and the sends attempted while down.
  HostPair t(Bandwidth::gbps(1));
  telemetry::trace().clear();
  telemetry::TraceSink::set_enabled(true);
  MtpEndpoint a(*t.a, {});
  MtpEndpoint b(*t.b, {});
  b.listen(80, [](const ReceivedMessage&) {});
  a.send_message(t.b->id(), 200'000, {.dst_port = 80});
  FaultInjector inj(t.sim(), 1);
  inj.flap_link(*t.sw_to_b, 30_us, 500_us);
  t.sim().run(10_ms);
  telemetry::TraceSink::set_enabled(false);

  EXPECT_GT(t.sw_to_b->stats().pkts_dropped_down, 0u);
  EXPECT_EQ(b.msgs_delivered(), 1u);  // retransmission recovers everything
  // Both flap edges traced.
  EXPECT_EQ(telemetry::trace().count(telemetry::TraceEventType::kLinkFlap), 2u);
}

TEST(FaultInjector, RandomFlapsAreSeedDeterministicAndEndUp) {
  auto run = [](std::uint64_t seed) {
    HostPair t;
    FaultInjector inj(t.sim(), seed);
    inj.random_flaps(*t.sw_to_b, 100_us, 3_ms, /*mean_up=*/300_us,
                     /*mean_down=*/100_us);
    t.sim().run(10_ms);
    EXPECT_TRUE(t.sw_to_b->is_up());  // guaranteed back up at the horizon
    return std::pair{inj.digest(), inj.flaps_executed()};
  };
  const auto [d1, f1] = run(5);
  const auto [d2, f2] = run(5);
  const auto [d3, f3] = run(6);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(f1, f2);
  EXPECT_GT(f1, 0u);
  EXPECT_NE(d1, d3);  // different seed, different timeline
}

TEST(FaultInjector, ApplyRunsAWholePlan) {
  HostPair t;
  int crashed = 0, restarted = 0;
  FaultPlan plan;
  plan.flaps.push_back({t.sw_to_b, 50_us, 100_us});
  plan.impairments.push_back({t.a_to_sw, {.p_good_to_bad = 0.0}});
  plan.crashes.push_back({"dev", 20_us, 40_us, [&] { ++crashed; }, [&] { ++restarted; }});
  FaultInjector inj(t.sim(), 3);
  inj.apply(plan);
  t.sim().run(1_ms);
  EXPECT_EQ(inj.flaps_executed(), 2u);
  EXPECT_EQ(crashed, 1);
  EXPECT_EQ(restarted, 1);
  EXPECT_EQ(inj.crashes(), 1u);
  EXPECT_EQ(inj.restarts(), 1u);
}

// ------------------------------------------------------- MTP RTO backoff

TEST(MtpRto, BackoffGrowsUnderBlackholeAndResetsOnProgress) {
  HostPair t;
  MtpEndpoint a(*t.a, {});
  MtpEndpoint b(*t.b, {});
  b.listen(80, [](const ReceivedMessage&) {});

  // Establish an RTT estimate on a clean path.
  a.send_message(t.b->id(), 4'000, {.dst_port = 80});
  t.sim().run(1_ms);
  ASSERT_EQ(b.msgs_delivered(), 1u);
  EXPECT_EQ(a.rto_backoff(), 1.0);

  // Blackhole the data direction and send again: consecutive timeout scans
  // must back the timer off exponentially (and stay capped).
  t.sw_to_b->set_up(false);
  a.send_message(t.b->id(), 4'000, {.dst_port = 80});
  t.sim().run(60_ms);
  EXPECT_GE(a.rto_backoff(), 8.0);
  EXPECT_LE(a.rto_backoff(), 64.0);

  // Restore: the message completes and SACK progress resets the backoff.
  t.sw_to_b->set_up(true);
  t.sim().run(1_s);
  EXPECT_EQ(b.msgs_delivered(), 2u);
  EXPECT_EQ(a.rto_backoff(), 1.0);
}

// ------------------------------------------------------- recovery edges

TEST(RecoveryEdge, TcpSynLostToDownLinkEventuallyConnects) {
  HostPair t;
  transport::TcpStack ca(*t.a, {});
  transport::TcpStack cb(*t.b, {});
  std::shared_ptr<transport::TcpConnection> server;
  cb.listen(80, [&](std::shared_ptr<transport::TcpConnection> c) { server = std::move(c); });

  t.a_to_sw->set_up(false);  // SYN will be blackholed
  auto client = ca.connect(t.b->id(), 80);
  t.sim().schedule_at(5_ms, [&] { t.a_to_sw->set_up(true); });
  t.sim().run(100_ms);

  EXPECT_EQ(client->state(), transport::TcpConnection::State::kEstablished);
  ASSERT_NE(server, nullptr);
  EXPECT_GT(client->timeouts(), 0u);  // the handshake had to be retried
}

TEST(RecoveryEdge, MtpMessageSpansMidTransferFlap) {
  HostPair t(Bandwidth::gbps(1));
  MtpEndpoint a(*t.a, {});
  MtpEndpoint b(*t.b, {});
  std::int64_t got = 0;
  int deliveries = 0;
  b.listen(80, [&](const ReceivedMessage& m) {
    ++deliveries;
    got = m.bytes;
  });
  int completions = 0;
  a.send_message(t.b->id(), 500'000, {.dst_port = 80},
                 [&](proto::MsgId, SimTime) { ++completions; });
  FaultInjector inj(t.sim(), 9);
  inj.flap_link(*t.sw_to_b, 1_ms, 1_ms);  // mid-transfer outage
  t.sim().run(200_ms);

  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(got, 500'000);
  EXPECT_EQ(b.corrupted_delivered(), 0u);
  EXPECT_EQ(t.sim().pending_events(), 0u);  // everything quiesced
}

TEST(RecoveryEdge, StreamSpansMidTransferFlapCompletesExactlyOnce) {
  // An mtp::stream (FEC on) straddling a 1 ms outage: MTP re-drives the
  // segment messages, the stream layer dedups, and every byte arrives
  // exactly once and in order.
  HostPair t(Bandwidth::gbps(1));
  MtpEndpoint a(*t.a, {});
  MtpEndpoint b(*t.b, {});
  stream::StreamConfig cfg;
  cfg.fec_k = 4;
  cfg.fec_r = 1;
  stream::StreamMux tx(a, 80, cfg);
  stream::StreamMux rx(b, 80, cfg);
  stream::Stream& s = tx.open(t.b->id(), 80);
  int completions = 0;
  s.on_complete = [&] { ++completions; };
  s.on_error = [&](stream::StreamError) { FAIL() << "stream error"; };
  std::vector<std::uint32_t> seqs;
  rx.on_segment = [&](net::NodeId, std::uint32_t, std::uint32_t seq, std::uint32_t,
                      const std::string&, bool) { seqs.push_back(seq); };
  int rx_completions = 0;
  rx.on_stream_complete = [&](net::NodeId, std::uint32_t) { ++rx_completions; };

  for (int rec = 0; rec < 100; ++rec) s.write(5'000);  // ~4 ms at 1 Gb/s
  s.finish();
  FaultInjector inj(t.sim(), 9);
  inj.flap_link(*t.sw_to_b, 1_ms, 1_ms);  // mid-transfer outage
  t.sim().run(2'000_ms);

  EXPECT_EQ(completions, 1);
  EXPECT_EQ(rx_completions, 1);
  ASSERT_EQ(seqs.size(), 500u);  // 100 records x 5 segments, exactly once
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i);
  EXPECT_EQ(rx.stats().bytes_delivered, 500'000u);
  EXPECT_EQ(rx.stats().streams_failed, 0u);
  EXPECT_EQ(t.sim().pending_events(), 0u);  // everything quiesced
}

TEST(RecoveryEdge, StreamReceiverCrashSurfacesPeerResetExactlyOnce) {
  // The receiving mux crashes (state wipe) after the stream has acked
  // progress. On restart the rebuilt rx state reports a newer epoch with a
  // regressed cumulative ack — the sender must surface one clean
  // kPeerReset, never a hang and never a silent partial re-delivery.
  HostPair t(Bandwidth::gbps(1));
  MtpEndpoint a(*t.a, {});
  MtpEndpoint b(*t.b, {});
  stream::StreamMux tx(a, 80, {});
  stream::StreamMux rx(b, 80, {});
  stream::Stream& s = tx.open(t.b->id(), 80);
  std::vector<stream::StreamError> errors;
  s.on_error = [&](stream::StreamError e) { errors.push_back(e); };
  s.on_complete = [&] { FAIL() << "stream completed across a state wipe"; };

  for (int rec = 0; rec < 200; ++rec) s.write(5'000);  // ~8 ms at 1 Gb/s
  s.finish();
  FaultInjector inj(t.sim(), 17);
  inj.crash_device(
      "stream-rx", 2_ms, 10_ms, [&] { rx.crash(); }, [&] { rx.restart(); });
  t.sim().run(5'000_ms);

  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0], stream::StreamError::kPeerReset);
  EXPECT_TRUE(s.failed());
  EXPECT_EQ(tx.stats().streams_failed, 1u);
  EXPECT_EQ(rx.stats().streams_completed, 0u);
  EXPECT_EQ(inj.crashes(), 1u);
  EXPECT_EQ(inj.restarts(), 1u);
  EXPECT_EQ(t.sim().pending_events(), 0u);  // failure is clean: no timers leak
}

TEST(RecoveryEdge, SenderMuxCrashQuarantinesStreamsKeepingPointersValid) {
  // The *sending* device crashes mid-stream. Callers (scenario replay, app
  // fault handlers) hold raw Stream* across the wipe, so crash() must
  // quarantine sender streams — alive, failed, writes safe no-ops — rather
  // than destroy them (use-after-free on the next write).
  HostPair t(Bandwidth::gbps(1));
  MtpEndpoint a(*t.a, {});
  MtpEndpoint b(*t.b, {});
  stream::StreamMux tx(a, 80, {});
  stream::StreamMux rx(b, 80, {});
  stream::Stream& s = tx.open(t.b->id(), 80);
  int errors = 0;
  s.on_error = [&](stream::StreamError) { ++errors; };
  s.on_complete = [&] { FAIL() << "quarantined stream completed"; };

  for (int rec = 0; rec < 50; ++rec) s.write(5'000);  // ~2 ms at 1 Gb/s
  t.sim().run(1_ms);
  tx.crash();
  // Post-crash writes through the retained pointer: no-ops, not UAF.
  s.write(5'000);
  s.finish();
  EXPECT_TRUE(s.failed());
  EXPECT_EQ(errors, 0);  // the app died with the device: nothing to surface
  tx.restart();
  t.sim().run(5'000_ms);

  EXPECT_EQ(tx.stats().streams_failed, 0u);
  EXPECT_EQ(rx.stats().streams_completed, 0u);
  EXPECT_EQ(t.sim().pending_events(), 0u);  // quarantine cancelled all timers
}

TEST(RecoveryEdge, RepeatedTimeoutsExcludePathletAndRerouteAroundBlackhole) {
  // Leaf-spine with two spines. The spine0->leaf1 downlink fails — invisible
  // to leaf0's forwarding policy, which keeps seeing a healthy uplink. Only
  // the sender notices (timeouts), excludes the learned pathlet, and its
  // Path Exclude list steers the switch onto spine1.
  net::Network net(4);
  net::LeafSpine ls(net, {.leaves = 2, .spines = 2, .hosts_per_leaf = 1},
                    [] { return std::make_unique<net::MessageAwarePolicy>(); });
  ls.uplink(0, 0)->set_pathlet({.id = 1, .feedback = proto::FeedbackType::kEcn});
  ls.uplink(0, 1)->set_pathlet({.id = 2, .feedback = proto::FeedbackType::kEcn});

  core::MtpConfig cfg;
  cfg.auto_exclude_after_losses = 2;
  cfg.exclude_duration = 20_ms;
  MtpEndpoint a(*ls.host(0, 0), cfg);
  MtpEndpoint b(*ls.host(1, 0), {});
  int deliveries = 0;
  b.listen(80, [&](const ReceivedMessage&) { ++deliveries; });

  // Learn the path (all traffic currently rides spine0, the first uplink).
  a.send_message(b.host().id(), 5'000, {.dst_port = 80});
  net.simulator().run(1_ms);
  ASSERT_EQ(deliveries, 1);
  const auto learned = a.current_path(b.host().id());
  ASSERT_FALSE(learned.empty());

  // Fail the far side of spine0's path and send another message.
  ls.spine(0)->out_port(1)->set_up(false);
  const std::uint64_t spine1_before = ls.uplink(0, 1)->stats().pkts_delivered;
  a.send_message(b.host().id(), 5'000, {.dst_port = 80});
  net.simulator().run(200_ms);

  EXPECT_EQ(deliveries, 2);  // rerouted and delivered despite the blackhole
  EXPECT_GT(ls.uplink(0, 1)->stats().pkts_delivered, spine1_before);
}

TEST(RecoveryEdge, KvsCacheCrashMidRpcFailsOverToBackendExactlyOnce) {
  HostPair t(Bandwidth::gbps(1));
  MtpEndpoint client_ep(*t.a, {});
  MtpEndpoint server_ep(*t.b, {});
  core::RpcClient client(client_ep, {.reply_port = 9000,
                                     .timeout = 3_ms,
                                     .max_retries = 3,
                                     .retry_seed = 21});
  core::RpcServer server(server_ep, 80);
  server.handle("k", [](const std::string&, std::int64_t, net::NodeId) {
    return core::RpcServer::Response{200'000, "from-backend"};
  });
  auto cache = std::make_shared<innetwork::KvsCache>(
      *t.sw, innetwork::KvsCache::Config{.backend = t.b->id(), .service_port = 80});
  cache->put("k", "from-cache", 200'000);
  t.sw->add_ingress(cache);

  std::vector<core::RpcReply> replies;
  client.call(t.b->id(), 80, "k", 1'000,
              [&](const core::RpcReply& r) { replies.push_back(r); });

  // Crash the cache while its 200 KB reply is mid-flight (1.6 ms at 1 Gb/s).
  FaultInjector inj(t.sim(), 17);
  inj.crash_device(
      "kvs", 300_us, 20_ms, [&] { cache->crash(); }, [&] { cache->restart(); });
  t.sim().run(500_ms);

  ASSERT_EQ(replies.size(), 1u);  // exactly one callback, no duplicate reply
  EXPECT_TRUE(replies[0].ok);
  EXPECT_EQ(replies[0].body, "from-backend");  // retry missed through to b
  EXPECT_EQ(replies[0].responder, t.b->id());
  EXPECT_GE(client.retries(), 1u);
  EXPECT_EQ(client.completed(), 1u);
  EXPECT_EQ(client.timed_out(), 0u);
  EXPECT_EQ(cache->crashes(), 1u);
  EXPECT_EQ(inj.crashes(), 1u);
  EXPECT_EQ(inj.restarts(), 1u);
  EXPECT_EQ(cache->receiver().corrupted_delivered(), 0u);
}

TEST(RecoveryEdge, RpcRetriesAcrossLinkFlap) {
  HostPair t;
  MtpEndpoint client_ep(*t.a, {});
  MtpEndpoint server_ep(*t.b, {});
  // Budget: the endpoint-global Karn backoff means a blackhole that catches
  // several messages un-blocks them one doubled-RTO at a time, so the reply
  // can take a few extra milliseconds after the link returns. The retry
  // schedule must out-live that, not race it.
  core::RpcClient client(client_ep, {.reply_port = 9000,
                                     .timeout = 3_ms,
                                     .max_retries = 4,
                                     .retry_backoff_cap = 8_ms,
                                     .retry_seed = 8});
  core::RpcServer server(server_ep, 80);
  server.handle("", [](const std::string&, std::int64_t, net::NodeId) {
    return core::RpcServer::Response{1'000, "ok"};
  });

  t.sw_to_b->set_up(false);
  t.sim().schedule_at(2_ms, [&] { t.sw_to_b->set_up(true); });
  int callbacks = 0;
  bool ok = false;
  client.call(t.b->id(), 80, "ping", 1'000, [&](const core::RpcReply& r) {
    ++callbacks;
    ok = r.ok;
  });
  t.sim().run(200_ms);

  EXPECT_EQ(callbacks, 1);
  EXPECT_TRUE(ok);
  EXPECT_GE(client.retries(), 1u);
  EXPECT_EQ(client.completed(), 1u);
}

// ------------------------------------------------------- L7 LB ejection

TEST(L7Lb, EjectedReplicaReceivesNoNewRequests) {
  net::Network net(1);
  net::Switch* sw = net.add_switch("lb");
  innetwork::L7LoadBalancer lb({.virtual_service = 50, .replicas = {60, 61}});

  auto request = [&](proto::MsgId id) {
    net::Packet p;
    p.src = 1;
    p.dst = 50;
    p.payload_bytes = 1000;
    p.uid = id;
    proto::MtpHeader h;
    h.msg_id = id;
    h.msg_len_pkts = 1;
    h.msg_len_bytes = 1000;
    h.pkt_len = 1000;
    p.header = h;
    lb.process(p, *sw);
    return p.dst;
  };

  lb.set_replica_up(0, false);
  for (proto::MsgId id = 1; id <= 8; ++id) {
    EXPECT_EQ(request(id), 61u);  // everything avoids the ejected replica
  }
  // All replicas down: fall back to best-overall rather than blackholing.
  lb.set_replica_up(1, false);
  const net::NodeId any = request(9);
  EXPECT_TRUE(any == 60 || any == 61);
  // Recovery: replica 0 returns and takes traffic again.
  lb.set_replica_up(0, true);
  lb.set_replica_up(1, true);
  bool saw_60 = false;
  for (proto::MsgId id = 10; id <= 20; ++id) saw_60 |= (request(id) == 60u);
  EXPECT_TRUE(saw_60);
}

// ----------------------------------------------- corruption under faults

TEST(Impairment, MtpNeverDeliversCorruptedPayloads) {
  HostPair t;
  telemetry::trace().clear();
  telemetry::TraceSink::set_enabled(true);
  MtpEndpoint a(*t.a, {});
  MtpEndpoint b(*t.b, {});
  int deliveries = 0;
  b.listen(80, [&](const ReceivedMessage&) { ++deliveries; });
  FaultInjector inj(t.sim(), 23);
  inj.impair_link(*t.sw_to_b, {.p_good_to_bad = 0.2,
                               .p_bad_to_good = 0.1,
                               .bad_loss = 0.1,
                               .bad_corrupt = 0.5});
  a.send_message(t.b->id(), 100'000, {.dst_port = 80});
  t.sim().run(500_ms);
  telemetry::TraceSink::set_enabled(false);

  EXPECT_EQ(deliveries, 1);
  EXPECT_GT(inj.pkts_corrupted(), 0u);
  EXPECT_GT(b.checksum_drops(), 0u);
  EXPECT_EQ(b.corrupted_delivered(), 0u);  // the headline invariant
  EXPECT_GT(telemetry::trace().count(telemetry::TraceEventType::kCorrupt), 0u);
  EXPECT_GT(telemetry::trace().count(telemetry::TraceEventType::kChecksumDrop), 0u);
}

TEST(Impairment, TcpDropsCorruptedSegmentsAndStillCompletes) {
  HostPair t;
  transport::TcpStack ca(*t.a, {});
  transport::TcpStack cb(*t.b, {});
  std::shared_ptr<transport::TcpConnection> server;
  std::int64_t got = 0;
  cb.listen(80, [&](std::shared_ptr<transport::TcpConnection> c) {
    server = std::move(c);
    server->on_data = [&](std::int64_t bytes) { got += bytes; };
  });
  FaultInjector inj(t.sim(), 31);
  inj.impair_link(*t.sw_to_b, {.p_good_to_bad = 0.1,
                               .p_bad_to_good = 0.1,
                               .bad_loss = 0.0,
                               .bad_corrupt = 0.5});
  auto client = ca.connect(t.b->id(), 80);
  client->on_established = [&] { client->send(100'000); };
  t.sim().run(500_ms);

  EXPECT_EQ(got, 100'000);
  EXPECT_GT(cb.total_checksum_drops(), 0u);
}

TEST(Impairment, ClearRestoresACleanLink) {
  HostPair t;
  FaultInjector inj(t.sim(), 2);
  inj.impair_link(*t.sw_to_b, {.p_good_to_bad = 1.0, .bad_loss = 1.0});
  inj.clear_impairment(*t.sw_to_b);
  MtpEndpoint a(*t.a, {});
  MtpEndpoint b(*t.b, {});
  b.listen(80, [](const ReceivedMessage&) {});
  a.send_message(t.b->id(), 10'000, {.dst_port = 80});
  t.sim().run(10_ms);
  EXPECT_EQ(b.msgs_delivered(), 1u);
  EXPECT_EQ(inj.pkts_dropped(), 0u);
}

// --------------------------------------------- device receiver checksum

TEST(DeviceReceiver, NacksCorruptedPacketsAndNeverAccumulatesThem) {
  net::Network net(1);
  net::Switch* sw = net.add_switch("dev");
  net::Host* h = net.add_host("h");
  net.connect(*sw, *h, Bandwidth::gbps(10), 1_us);
  sw->add_route(h->id(), 0);
  innetwork::DeviceReceiver rx(*sw, {});

  net::Packet bad = mtp_data_pkt(0, 1);
  bad.stamp_fingerprint();
  bad.corrupt();
  EXPECT_FALSE(rx.on_data(bad).has_value());
  EXPECT_EQ(rx.checksum_drops(), 1u);
  EXPECT_EQ(rx.corrupted_delivered(), 0u);

  net::Packet good = mtp_data_pkt(0, 1);
  good.stamp_fingerprint();
  EXPECT_TRUE(rx.on_data(good).has_value());  // clean copy still completes
}

}  // namespace
}  // namespace mtp::fault
